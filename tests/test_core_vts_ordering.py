"""Tests for vector timestamps and Algorithm 2 deterministic ordering,
including the hypothesis agreement property: any interleaving of the same
assignment events yields the same execution order on every node."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import EntryId
from repro.core.ordering import DeterministicOrderer, RoundBasedOrderer
from repro.core.vts import GroupClock, VectorTimestamp, compare_complete


class TestGroupClock:
    def test_monotonic_advance(self):
        clk = GroupClock(0)
        clk.advance_to(5)
        clk.advance_to(3)  # stale, ignored
        assert clk.read() == 5

    def test_initial_zero(self):
        assert GroupClock(1).read() == 0


class TestVectorTimestamp:
    def test_assign_and_complete(self):
        vts = VectorTimestamp(3)
        assert not vts.complete
        for g in range(3):
            vts.assign(g, g + 1)
        assert vts.complete
        assert vts.as_tuple() == (1, 2, 3)

    def test_reassign_same_value_ok(self):
        vts = VectorTimestamp(2)
        vts.assign(0, 5)
        vts.assign(0, 5)

    def test_conflicting_reassign_rejected(self):
        vts = VectorTimestamp(2)
        vts.assign(0, 5)
        with pytest.raises(ValueError):
            vts.assign(0, 6)

    def test_infer_only_raises_lower_bound(self):
        vts = VectorTimestamp(2)
        vts.infer(0, 3)
        vts.infer(0, 2)  # lower, ignored
        assert vts.values[0] == 3
        assert not vts.is_set[0]

    def test_infer_after_assign_is_noop(self):
        vts = VectorTimestamp(2)
        vts.assign(0, 5)
        vts.infer(0, 99)
        assert vts.values[0] == 5

    def test_assign_below_inferred_bound_rejected(self):
        vts = VectorTimestamp(2)
        vts.infer(0, 10)
        with pytest.raises(ValueError):
            vts.assign(0, 7)

    def test_compare_complete_total_order(self):
        # Paper example: e_{2,6} <6,6,4> before e_{3,5} <6,6,5>.
        assert compare_complete((6, 6, 4), 6, 1, (6, 6, 5), 5, 2) == -1
        # Identical VTS: seq breaks the tie, then gid.
        assert compare_complete((1, 1), 4, 2, (1, 1), 5, 1) == -1
        assert compare_complete((1, 1), 4, 2, (1, 1), 4, 1) == 1


def run_scenario(orderer: DeterministicOrderer, events):
    for event in events:
        kind = event[0]
        if kind == "ts":
            _, assigner, gid, seq, ts = event
            orderer.on_timestamp(assigner, gid, seq, ts)
        else:
            _, gid, seq = event
            orderer.mark_available(gid, seq)


class TestDeterministicOrderer:
    def full_entry_events(self, gid, seq, vts):
        events = [("avail", gid, seq)]
        for assigner, ts in enumerate(vts):
            if assigner != gid:
                events.append(("ts", assigner, gid, seq, ts))
        return events

    def test_paper_figure6_order(self):
        # e_{1,7}=<...>: reproduce the Fig 6 comparison outcome for
        # e_{2,6} <6,6,4> vs e_{3,5} <6,6,5> (0-indexed here as groups
        # 0/1/2): the entry with the smaller third element goes first.
        executed = []
        orderer = DeterministicOrderer(3, executed.append)
        # Build up both groups' entries 1..6 and 1..5 plus group0's 1..6.
        for seq in range(1, 7):
            run_scenario(orderer, self.full_entry_events(0, seq, (seq, seq, seq)))
            run_scenario(orderer, self.full_entry_events(1, seq, (seq, seq, seq)))
            run_scenario(orderer, self.full_entry_events(2, seq, (seq, seq, seq)))
        assert len(executed) >= 12

    def test_fast_group_not_blocked_by_slow_group(self):
        """The core MassBFT property (Fig 2): a fast group's backlog of
        entries all execute as soon as the slow group's next assignment
        round arrives — throughput decouples from the slow group's rate
        (round-based ordering would cap the fast group at one entry per
        slow-group entry; see TestRoundBasedOrderer below)."""
        executed = []
        orderer = DeterministicOrderer(2, executed.append)
        # Fast group 0 proposes entries 1..5; slow group 1 assigns its
        # (non-advancing) clock to each; nothing executes yet because
        # head_1's vts[0] is only inferred.
        for seq in range(1, 6):
            orderer.mark_available(0, seq)
            orderer.on_timestamp(1, 0, seq, 0)  # slow group's clock stays 0
        assert executed == []
        # The slow group's first entry finally shows up and group 0
        # assigns clk_0 = 5 to it: the entire fast backlog drains at once.
        orderer.on_timestamp(0, 1, 1, 5)
        assert executed == [EntryId(0, s) for s in range(1, 6)]

    def test_stalls_without_crashed_group_assignments(self):
        """Fig 15: without vts[j] from a (crashed) group, nothing executes."""
        executed = []
        orderer = DeterministicOrderer(2, executed.append)
        orderer.mark_available(0, 1)
        # No timestamp from group 1 at all.
        assert executed == []

    def test_unavailable_entry_blocks_execution(self):
        executed = []
        orderer = DeterministicOrderer(2, executed.append)
        orderer.on_timestamp(1, 0, 1, 0)
        orderer.on_timestamp(0, 1, 1, 2)  # resolves head comparison
        assert executed == []  # e0,1 wins the ordering but payload absent
        orderer.mark_available(0, 1)
        assert executed == [EntryId(0, 1)]

    def test_same_group_entries_execute_in_seq_order(self):
        executed = []
        orderer = DeterministicOrderer(2, executed.append)
        # Entry payloads arrive out of order (seq 2 before seq 1); the
        # assigner's timestamp stream itself stays in order (it is
        # replicated through one Raft instance).
        orderer.mark_available(0, 2)
        orderer.on_timestamp(1, 0, 1, 0)
        orderer.on_timestamp(1, 0, 2, 1)
        orderer.mark_available(0, 1)
        orderer.on_timestamp(0, 1, 1, 3)  # unblocks the head comparison
        assert executed == [EntryId(0, 1), EntryId(0, 2)]

    def test_strict_mode_raises_on_conflict(self):
        orderer = DeterministicOrderer(2, lambda e: None, strict=True)
        orderer.on_timestamp(1, 0, 1, 5)
        with pytest.raises(ValueError):
            orderer.on_timestamp(1, 0, 1, 6)

    def test_tolerant_mode_keeps_first(self):
        orderer = DeterministicOrderer(2, lambda e: None, strict=False)
        orderer.on_timestamp(1, 0, 1, 5)
        orderer.on_timestamp(1, 0, 1, 6)
        assert orderer.conflicting_assignments == 1
        assert orderer.vts_of(0, 1).values[1] == 5

    @given(data=st.data(), n_groups=st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_property_agreement_under_any_interleaving(self, data, n_groups):
        """Two nodes fed the same event set in different orders execute
        the same prefix — the Theorem V.6 agreement property."""
        n_entries = data.draw(st.integers(min_value=1, max_value=5))
        # Construct a consistent set of assignments: per-group clocks
        # assign non-decreasing timestamps in seq order.
        events = []
        clocks = [0] * n_groups  # each assigner's clock is global
        for gid in range(n_groups):
            for seq in range(1, n_entries + 1):
                events.append(("avail", gid, seq))
                for assigner in range(n_groups):
                    if assigner == gid:
                        continue
                    bump = data.draw(st.integers(min_value=0, max_value=2))
                    clocks[assigner] += bump
                    events.append(("ts", assigner, gid, seq, clocks[assigner]))
        # Two independent shuffles, constrained to keep each assigner's
        # timestamp stream in its original order (assignments replicate
        # through the assigner's own Raft instance, a single ordered log).
        original_position = {id(e): i for i, e in enumerate(events)}

        def legal_shuffle():
            perm = data.draw(st.permutations(events))
            streams = {}
            for e in events:  # original order per assigner
                if e[0] == "ts":
                    streams.setdefault(e[1], []).append(e)
            consumed = {k: 0 for k in streams}
            out = []
            for e in perm:
                if e[0] == "ts":
                    assigner = e[1]
                    out.append(streams[assigner][consumed[assigner]])
                    consumed[assigner] += 1
                else:
                    out.append(e)
            return out

        order_a, order_b = [], []
        oa = DeterministicOrderer(n_groups, order_a.append)
        ob = DeterministicOrderer(n_groups, order_b.append)
        run_scenario(oa, legal_shuffle())
        run_scenario(ob, legal_shuffle())
        common = min(len(order_a), len(order_b))
        assert order_a[:common] == order_b[:common]


class TestRoundBasedOrderer:
    def test_round_completes_when_all_groups_deliver(self):
        executed = []
        orderer = RoundBasedOrderer(3, executed.append)
        orderer.deliver(2, 1)
        orderer.deliver(0, 1)
        assert executed == []
        orderer.deliver(1, 1)
        assert executed == [EntryId(0, 1), EntryId(1, 1), EntryId(2, 1)]

    def test_gid_order_within_round(self):
        executed = []
        orderer = RoundBasedOrderer(2, executed.append)
        orderer.deliver(1, 1)
        orderer.deliver(0, 1)
        assert [e.gid for e in executed] == [0, 1]

    def test_slow_group_blocks_fast_group(self):
        """The Fig 2 pathology that MassBFT eliminates."""
        executed = []
        orderer = RoundBasedOrderer(2, executed.append)
        for seq in range(1, 10):
            orderer.deliver(0, seq)  # fast group races ahead
        assert executed == []  # all blocked on group 1's round 1

    def test_out_of_order_delivery(self):
        executed = []
        orderer = RoundBasedOrderer(2, executed.append)
        orderer.deliver(0, 2)
        orderer.deliver(1, 2)
        orderer.deliver(1, 1)
        orderer.deliver(0, 1)
        assert executed == [
            EntryId(0, 1),
            EntryId(1, 1),
            EntryId(0, 2),
            EntryId(1, 2),
        ]

    def test_exclude_group_unblocks(self):
        executed = []
        orderer = RoundBasedOrderer(2, executed.append)
        orderer.deliver(0, 1)
        orderer.exclude_group(1)
        assert executed == [EntryId(0, 1)]

    def test_invalid_seq(self):
        orderer = RoundBasedOrderer(2, lambda e: None)
        with pytest.raises(ValueError):
            orderer.deliver(0, 0)
