"""Unit and property tests for GF(256), matrices, and Reed-Solomon."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.chunking import join_chunks, pad_to_chunks, split_message
from repro.erasure.galois import GF256
from repro.erasure.matrix import Matrix
from repro.erasure.reed_solomon import ReedSolomonCodec

field_elem = st.integers(min_value=0, max_value=255)
nonzero_elem = st.integers(min_value=1, max_value=255)


class TestGalois:
    @given(a=field_elem, b=field_elem)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(a=field_elem, b=field_elem, c=field_elem)
    @settings(max_examples=200)
    def test_mul_associative_and_distributive(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))
        assert GF256.mul(a, b ^ c) == GF256.mul(a, b) ^ GF256.mul(a, c)

    @given(a=nonzero_elem)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inverse(a)) == 1

    @given(a=field_elem, b=nonzero_elem)
    def test_div_is_mul_by_inverse(self, a, b):
        assert GF256.div(a, b) == GF256.mul(a, GF256.inverse(b))

    def test_identity_and_zero(self):
        for a in range(256):
            assert GF256.mul(a, 1) == a
            assert GF256.mul(a, 0) == 0
            assert GF256.add(a, a) == 0  # characteristic 2

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            GF256.inverse(0)

    @given(a=field_elem)
    def test_pow(self, a):
        assert GF256.pow(a, 0) == 1
        assert GF256.pow(a, 1) == a
        assert GF256.pow(a, 2) == GF256.mul(a, a)

    def test_mul_row(self):
        row = bytes(range(10))
        assert GF256.mul_row(0, row) == bytes(10)
        assert GF256.mul_row(1, row) == row
        doubled = GF256.mul_row(2, row)
        assert doubled == bytes(GF256.mul(2, b) for b in row)

    def test_xor_rows(self):
        assert GF256.xor_rows(b"\x01\x02", b"\x03\x04") == b"\x02\x06"
        with pytest.raises(ValueError):
            GF256.xor_rows(b"\x01", b"\x01\x02")


class TestMatrix:
    def test_identity_multiplication(self):
        m = Matrix([[1, 2], [3, 4]])
        assert Matrix.identity(2).multiply(m) == m
        assert m.multiply(Matrix.identity(2)) == m

    def test_inversion_roundtrip(self):
        m = Matrix.vandermonde(4, 4)
        inv = m.invert()
        assert m.multiply(inv) == Matrix.identity(4)

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [1, 2]]).invert()

    def test_non_square_inversion_rejected(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2, 3], [4, 5, 6]]).invert()

    def test_vandermonde_any_square_subset_invertible(self):
        v = Matrix.vandermonde(8, 4)
        for rows in ([0, 1, 2, 3], [4, 5, 6, 7], [0, 3, 5, 7], [1, 2, 6, 7]):
            v.select_rows(rows).invert()  # must not raise

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2]]).multiply(Matrix([[1, 2]]))

    def test_validation(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [3]])
        with pytest.raises(ValueError):
            Matrix([[300]])
        with pytest.raises(ValueError):
            Matrix([])

    def test_vandermonde_row_limit(self):
        with pytest.raises(ValueError):
            Matrix.vandermonde(257, 3)


class TestReedSolomon:
    def test_systematic_prefix(self):
        codec = ReedSolomonCodec(3, 2)
        data = [b"aa", b"bb", b"cc"]
        chunks = codec.encode_chunks(data)
        assert chunks[:3] == data
        assert len(chunks) == 5

    def test_decode_from_any_subset(self):
        import itertools

        codec = ReedSolomonCodec(3, 3)
        data = [b"abcd", b"efgh", b"ijkl"]
        chunks = codec.encode_chunks(data)
        for subset in itertools.combinations(range(6), 3):
            got = codec.decode_chunks({i: chunks[i] for i in subset})
            assert got == data, subset

    def test_insufficient_chunks_rejected(self):
        codec = ReedSolomonCodec(3, 2)
        chunks = codec.encode_chunks([b"aa", b"bb", b"cc"])
        with pytest.raises(ValueError):
            codec.decode_chunks({0: chunks[0], 1: chunks[1]})

    def test_corrupted_chunk_gives_wrong_message(self):
        codec = ReedSolomonCodec(2, 2)
        chunks = codec.encode_chunks([b"aa", b"bb"])
        bad = {1: chunks[1], 3: b"XX"}
        assert codec.decode_chunks(bad) != [b"aa", b"bb"]

    def test_message_roundtrip_with_padding(self):
        codec = ReedSolomonCodec(4, 3)
        for size in (0, 1, 7, 8, 100, 1001):
            msg = bytes(range(256)) * (size // 256 + 1)
            msg = msg[:size]
            chunks = codec.encode(msg)
            assert codec.decode({i: chunks[i] for i in (0, 2, 4, 6)}) == msg

    def test_inconsistent_sizes_rejected(self):
        codec = ReedSolomonCodec(2, 1)
        with pytest.raises(ValueError):
            codec.decode_chunks({0: b"aa", 1: b"b"})

    def test_chunk_index_out_of_range(self):
        codec = ReedSolomonCodec(2, 1)
        with pytest.raises(ValueError):
            codec.decode_chunks({0: b"aa", 5: b"bb"})

    def test_limits(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(0, 2)
        with pytest.raises(ValueError):
            ReedSolomonCodec(2, -1)
        with pytest.raises(ValueError):
            ReedSolomonCodec(200, 100)

    def test_overhead(self):
        assert ReedSolomonCodec(13, 15).overhead == pytest.approx(28 / 13)

    def test_chunk_size_for(self):
        codec = ReedSolomonCodec(3, 2)
        assert codec.chunk_size_for(10) == 6  # (10 + 8) / 3 rounded up

    @given(
        n_data=st.integers(min_value=1, max_value=12),
        n_parity=st.integers(min_value=0, max_value=12),
        message=st.binary(min_size=0, max_size=300),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_any_n_data_chunks_rebuild(
        self, n_data, n_parity, message, data
    ):
        codec = ReedSolomonCodec(n_data, n_parity)
        chunks = codec.encode(message)
        indices = data.draw(
            st.permutations(range(n_data + n_parity)).map(
                lambda p: sorted(p[:n_data])
            )
        )
        assert codec.decode({i: chunks[i] for i in indices}) == message


class TestChunking:
    def test_roundtrip(self):
        for n in (1, 2, 5, 13):
            for msg in (b"", b"x", b"hello world" * 7):
                assert join_chunks(pad_to_chunks(msg, n)) == msg

    def test_equal_chunk_sizes(self):
        chunks = pad_to_chunks(b"hello world", 4)
        assert len({len(c) for c in chunks}) == 1
        assert len(chunks) == 4

    def test_corrupt_length_header_detected(self):
        chunks = pad_to_chunks(b"hi", 2)
        huge = (2**40).to_bytes(8, "big") + b"".join(chunks)[8:]
        with pytest.raises(ValueError):
            join_chunks([huge])

    def test_split_message(self):
        assert split_message(b"abcdef", 4) == [b"abcd", b"ef"]
        assert split_message(b"", 4) == [b""]
        with pytest.raises(ValueError):
            split_message(b"x", 0)


class TestSeededErasure:
    """Seeded random-erasure property sweep.

    The hypothesis test above samples exactly-``n_data`` survivor sets;
    this sweep drives the codec the way the checker drives the protocols:
    a pinned seed generates erasure patterns of every survivable weight,
    so the run is reproducible byte-for-byte and covers parity-heavy
    subsets the combinatorial tests skip.
    """

    def test_random_erasure_patterns_round_trip(self):
        rng = random.Random(0x5EED)
        for n_data, n_parity in ((1, 2), (3, 2), (4, 3), (7, 4), (5, 5)):
            codec = ReedSolomonCodec(n_data, n_parity)
            n_total = n_data + n_parity
            for _ in range(12):
                message = rng.randbytes(rng.randint(0, 300))
                chunks = codec.encode(message)
                # Erase as many chunks as the code tolerates or fewer.
                erased = rng.sample(
                    range(n_total), rng.randint(0, n_parity)
                )
                survivors = {
                    i: chunks[i] for i in range(n_total) if i not in erased
                }
                # Decoding may use any n_data of the survivors.
                subset = dict(rng.sample(sorted(survivors.items()), n_data))
                assert codec.decode(subset) == message

    def test_one_erasure_too_many_fails_closed(self):
        rng = random.Random(0xDEAD)
        codec = ReedSolomonCodec(4, 2)
        chunks = codec.encode(rng.randbytes(100))
        survivors = rng.sample(range(6), 3)  # n_data - 1 chunks remain
        with pytest.raises(ValueError):
            codec.decode({i: chunks[i] for i in survivors})

    def test_seeded_sweep_is_deterministic(self):
        def fingerprint(seed):
            rng = random.Random(seed)
            codec = ReedSolomonCodec(3, 2)
            out = []
            for _ in range(5):
                message = rng.randbytes(rng.randint(1, 50))
                chunks = codec.encode(message)
                out.append(b"".join(chunks))
            return out

        assert fingerprint(7) == fingerprint(7)
        assert fingerprint(7) != fingerprint(8)


class TestKernelsAndDecodeCache:
    """The optimised row kernels and the inverted-submatrix memo."""

    @staticmethod
    def _chunks(n, length, seed):
        rng = random.Random(seed)
        return [bytes(rng.randrange(256) for _ in range(length)) for _ in range(n)]

    def test_decode_cache_identical_output(self):
        """Decoding with the submatrix cache equals decoding without it."""
        cached = ReedSolomonCodec(n_data=4, n_parity=3)
        uncached = ReedSolomonCodec(n_data=4, n_parity=3)
        data = self._chunks(4, 257, seed=11)
        encoded = cached.encode_chunks(data)
        assert uncached.encode_chunks(data) == encoded
        survivor_sets = [
            (1, 2, 4, 5),
            (0, 3, 5, 6),
            (3, 4, 5, 6),
            (1, 2, 4, 5),  # repeat: cache hit
        ]
        for survivors in survivor_sets:
            available = {i: encoded[i] for i in survivors}
            uncached._decode_cache.clear()  # force a fresh inversion
            assert cached.decode_chunks(available) == uncached.decode_chunks(
                available
            ) == data
        # The repeated survivor set was served from the memo.
        assert len(cached._decode_cache) == 3

    def test_decode_cache_bounded(self, monkeypatch):
        from repro.erasure import reed_solomon

        monkeypatch.setattr(reed_solomon, "_DECODE_CACHE_LIMIT", 2)
        codec = ReedSolomonCodec(n_data=3, n_parity=3)
        data = self._chunks(3, 64, seed=5)
        encoded = codec.encode_chunks(data)
        for survivors in [(1, 2, 3), (0, 2, 4), (2, 3, 4), (1, 3, 5)]:
            available = {i: encoded[i] for i in survivors}
            assert codec.decode_chunks(available) == data
        assert len(codec._decode_cache) == 2

    def test_gather_kernel_bit_identical(self):
        """The alternate numpy gather kernel matches the translate kernel."""
        from repro.erasure import reed_solomon

        if reed_solomon._np is None:
            pytest.skip("numpy unavailable")
        rng = random.Random(3)
        for n_rows, n_cols, length in [(1, 1, 1), (3, 5, 64), (7, 7, 300)]:
            coeffs = [
                [rng.randrange(256) for _ in range(n_cols)]
                for _ in range(n_rows)
            ]
            rows = self._chunks(n_cols, length, seed=rng.randrange(1 << 30))
            assert ReedSolomonCodec._apply_matrix(
                coeffs, rows, length, use_numpy=True
            ) == ReedSolomonCodec._apply_matrix(coeffs, rows, length)

    def test_codec_without_numpy(self, monkeypatch):
        """The codec round-trips identically with numpy masked out."""
        from repro.erasure import reed_solomon

        data = self._chunks(4, 129, seed=2)
        with_np = ReedSolomonCodec(n_data=4, n_parity=2)
        encoded = with_np.encode_chunks(data)
        monkeypatch.setattr(reed_solomon, "_np", None)
        without_np = ReedSolomonCodec(n_data=4, n_parity=2)
        assert without_np.encode_chunks(data) == encoded
        available = {i: encoded[i] for i in (1, 3, 4, 5)}
        assert without_np.decode_chunks(available) == data

    def test_mul_table_is_immutable_bytes(self):
        table = GF256.mul_table(0x53)
        assert isinstance(table, bytes)
        assert len(table) == 256
        assert table[7] == GF256.mul(0x53, 7)
