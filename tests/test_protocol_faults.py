"""Fault-tolerance integration tests (the Fig 15 scenarios)."""


from repro.protocols import GeoDeployment, baseline, massbft
from repro.workloads import make_workload
from tests.conftest import tiny_cluster


def deploy(spec, load=2500, sizes=(4, 4, 4), **kwargs):
    return GeoDeployment(
        tiny_cluster(sizes),
        spec,
        make_workload("ycsb-a"),
        offered_load=load,
        seed=21,
        **kwargs,
    )


def windowed_throughput(metrics, window=0.5, end=None):
    return [v / window for _, v in metrics.throughput_timeline.window_sums(window, end=end)]


class TestByzantineNodes:
    def test_tampering_does_not_reduce_throughput(self):
        """Fig 15 node failures: colluding Byzantine nodes flood tampered
        chunks from t=1.5 s; correct nodes rebuild from correct buckets
        and throughput is unchanged."""
        clean = deploy(massbft())
        clean_metrics = clean.run(duration=3.0, warmup=0.5)

        attacked = deploy(massbft())
        for g in range(3):
            attacked.make_byzantine_at(gid=g, count=1, at=1.5)
        attacked_metrics = attacked.run(duration=3.0, warmup=0.5)

        assert attacked_metrics.committed > 0.9 * clean_metrics.committed

    def test_tampered_buckets_detected(self):
        """At the paper's scale (7-node groups, f=2 colluding Byzantine
        nodes per group) fake buckets fill to n_data and are detected —
        while correct nodes keep committing from genuine buckets."""
        deployment = deploy(massbft(), sizes=(7, 7, 7))
        # Disjoint indices per group: faulty senders of one group and
        # faulty receivers of its peers corrupt different plan positions.
        for g, idx in ((0, [1, 2]), (1, [3, 4]), (2, [5, 6])):
            deployment.make_byzantine_at(gid=g, count=2, at=0.5, indices=idx)
        metrics = deployment.run(duration=2.0, warmup=0.0)
        assert deployment.transport.monitor_counters.get("rebuild_failures", 0) > 0
        assert metrics.committed > 500

    def test_real_coding_under_tampering_small(self):
        deployment = GeoDeployment(
            tiny_cluster((4, 4, 4)),
            massbft(),
            make_workload("ycsb-a"),
            offered_load=300,
            coding="real",
            seed=22,
        )
        deployment.make_byzantine_at(gid=1, count=1, at=0.3)
        metrics = deployment.run(duration=1.5, warmup=0.0)
        assert metrics.committed > 50


class TestGroupCrash:
    def test_crash_stalls_then_takeover_recovers(self):
        """Fig 15 group failure: execution stalls when a group's clock
        stops, then a takeover leader assigns on its behalf and the two
        surviving groups settle at ~2/3 of the original throughput."""
        deployment = deploy(massbft(), load=2500, takeover_timeout=0.5)
        deployment.crash_group_at(0, at=2.0)
        metrics = deployment.run(duration=6.0, warmup=0.0)
        metrics.end_time = 6.0
        tl = windowed_throughput(metrics, window=0.5, end=6.0)
        before = sum(tl[1:4]) / 3
        stall = tl[4]  # immediately after the crash
        after = sum(tl[9:12]) / 3
        assert stall < 0.5 * before
        assert after > 0.35 * before  # recovered (2 of 3 groups serving)
        assert after < 0.95 * before  # crashed group's clients unserved

    def test_takeover_leader_is_lowest_live_group(self):
        deployment = deploy(massbft(), load=1500, takeover_timeout=0.5)
        deployment.crash_group_at(0, at=1.0)
        deployment.run(duration=4.0, warmup=0.0)
        g1_view = deployment.groups[1].instances[0]
        assert g1_view.takeover_leader == 1

    def test_no_takeover_without_crash(self):
        deployment = deploy(massbft(), load=1500)
        deployment.run(duration=3.0, warmup=0.0)
        for runtime in deployment.groups.values():
            for state in runtime.instances.values():
                assert state.takeover_leader is None

    def test_surviving_observers_agree_after_crash(self):
        deployment = deploy(massbft(), load=1500, observers="all", takeover_timeout=0.5)
        orders = {}
        for node in deployment.nodes.values():
            if node.orderer is None or node.gid == 0:
                continue
            executed = []
            orders[node.addr] = executed
            original = node.orderer.on_execute

            def wrapped(eid, executed=executed, original=original):
                executed.append(eid)
                original(eid)

            node.orderer.on_execute = wrapped
        deployment.crash_group_at(0, at=1.0)
        deployment.run(duration=4.0, warmup=0.0)
        sequences = list(orders.values())
        reference = max(sequences, key=len)
        assert len(reference) > 20
        for seq in sequences:
            assert seq == reference[: len(seq)]


class TestNodeCrashWithinGroup:
    def test_massbft_tolerates_f_crashed_nodes(self):
        deployment = deploy(massbft(), sizes=(4, 4, 4), load=1500)

        def crash_followers():
            # One (f=1) non-representative node per group.
            for g in range(3):
                deployment.groups[g].members[3].crash()

        deployment.sim.schedule_at(0.5, crash_followers)
        metrics = deployment.run(duration=2.5, warmup=1.0)
        assert metrics.committed > 500

    def test_baseline_tolerates_f_crashed_receivers(self):
        deployment = deploy(baseline(), sizes=(4, 4, 4), load=1500)

        def crash_followers():
            for g in range(3):
                deployment.groups[g].members[3].crash()

        deployment.sim.schedule_at(0.5, crash_followers)
        metrics = deployment.run(duration=2.5, warmup=1.0)
        assert metrics.committed > 500


class TestBandwidthDegradation:
    def test_slow_nodes_reduce_massbft_throughput_gracefully(self):
        """Fig 14: replacing fast nodes with slow ones lowers throughput
        but does not collapse it (the transfer plan spreads load)."""
        results = {}
        for n_slow in (0, 4):
            cluster = tiny_cluster((7, 7, 7), wan_bandwidth=40e6)
            for group in cluster.groups:
                for idx in range(n_slow):
                    group.node_bandwidth[idx] = 20e6
            deployment = GeoDeployment(
                cluster,
                massbft(),
                make_workload("ycsb-a"),
                offered_load=20000,
                seed=23,
            )
            metrics = deployment.run(duration=1.5, warmup=0.5)
            results[n_slow] = metrics.throughput
        assert results[4] < results[0]
        assert results[4] > 0.3 * results[0]
