"""Tests for runtime reconfiguration: the membership log, modeled state
transfer, and the ReconfigStage's join / leave / leader-move / degrade
operations on a live deployment."""

import pytest

from repro.core.membership import MembershipLog
from repro.core.state_transfer import (
    SNAPSHOT_OVERHEAD_BYTES,
    plan_transfer,
    snapshot_bytes,
)
from repro.protocols import GeoDeployment, protocol_by_name
from repro.protocols.runtime.events import ReconfigApplied, ReconfigHandoff
from repro.sim.network import NodeAddress
from repro.topology import scaled_cluster
from repro.workloads import make_workload


def make_deployment(nodes_per_group=5, seed=3, load=1200.0):
    return GeoDeployment(
        scaled_cluster(n_groups=3, nodes_per_group=nodes_per_group),
        protocol_by_name("massbft"),
        make_workload("ycsb-a"),
        offered_load=load,
        seed=seed,
    )


def collect_reconfigs(deployment):
    events = []
    deployment.bus.subscribe(ReconfigApplied, events.append)
    return events


class TestMembershipLog:
    def addrs(self, n, gid=0):
        return [NodeAddress(gid, i) for i in range(n)]

    def test_genesis_is_epoch_zero(self):
        log = MembershipLog()
        view = log.genesis(0, self.addrs(4), NodeAddress(0, 0))
        assert view.epoch == 0 and view.n == 4 and view.quorum == 3
        assert log.view_of(0) is view

    def test_record_advances_the_global_epoch(self):
        log = MembershipLog()
        log.genesis(0, self.addrs(4), NodeAddress(0, 0))
        log.genesis(1, self.addrs(4, gid=1), NodeAddress(1, 0))
        v1 = log.record(0, self.addrs(5), NodeAddress(0, 0), 1.0, "join")
        v2 = log.record(1, self.addrs(5, gid=1), NodeAddress(1, 1), 2.0, "move")
        assert (v1.epoch, v2.epoch) == (1, 2)
        assert log.epoch == 2

    def test_at_epoch_resolves_the_forming_view(self):
        log = MembershipLog()
        log.genesis(0, self.addrs(4), NodeAddress(0, 0))
        log.record(0, self.addrs(7), NodeAddress(0, 0), 1.0, "grow")
        # Epoch 0 certificates validate against the 4-member view even
        # after the group grew; the current view is the 7-member one.
        assert log.at_epoch(0, 0).n == 4
        assert log.quorum_at(0, 0) == 3
        assert log.at_epoch(0, 1).n == 7
        assert log.quorum_at(0, 99) == 5
        assert len(log.members_at(0, 0)) == 4

    def test_epochs_interleave_across_groups(self):
        log = MembershipLog()
        log.genesis(0, self.addrs(4), NodeAddress(0, 0))
        log.genesis(1, self.addrs(4, gid=1), NodeAddress(1, 0))
        log.record(1, self.addrs(5, gid=1), NodeAddress(1, 0), 1.0, "a")
        log.record(0, self.addrs(5), NodeAddress(0, 0), 2.0, "b")
        # Group 0's epoch-1 view is still its genesis (group 1 advanced
        # the deployment epoch, group 0's membership was unchanged).
        assert log.at_epoch(0, 1).n == 4
        assert log.at_epoch(0, 2).n == 5


class TestStateTransfer:
    def test_snapshot_bytes_includes_overhead(self):
        assert snapshot_bytes([100, 200]) == SNAPSHOT_OVERHEAD_BYTES + 300
        assert snapshot_bytes([]) == SNAPSHOT_OVERHEAD_BYTES

    def test_plan_splits_evenly_with_remainder_to_first(self):
        sponsors = [NodeAddress(0, i) for i in range(3)]
        plan = plan_transfer(sponsors, 1000)
        sizes = dict(plan.slices)
        assert sum(sizes.values()) == 1000
        assert sizes[NodeAddress(0, 0)] == 334
        assert sizes[NodeAddress(0, 1)] == sizes[NodeAddress(0, 2)] == 333
        assert plan.sponsor_count == 3

    def test_plan_requires_a_sponsor(self):
        with pytest.raises(ValueError):
            plan_transfer([], 1000)


class TestJoin:
    def test_join_grows_membership_and_quorum(self):
        deployment = make_deployment(nodes_per_group=6)
        events = collect_reconfigs(deployment)
        group = deployment.groups[0]
        assert group.pbft.quorum == 3  # n=6, f=1
        deployment.join_node_at(0, 0.8)
        deployment.run(duration=2.0)
        assert len(group.members) == 7
        assert group.pbft.quorum == 5  # n=7, f=2
        view = deployment.membership.view_of(0)
        assert view.n == 7 and view.epoch == 1
        kinds = [e.kind for e in events]
        assert kinds[:2] == ["join_started", "join"]
        assert events[1].epoch == 1

    def test_joiner_catches_up_before_promotion(self):
        deployment = make_deployment()
        started = {}

        def on_event(event):
            if event.kind == "join_started":
                started["at"] = event.at
            elif event.kind == "join":
                started["promoted"] = event.at

        deployment.bus.subscribe(ReconfigApplied, on_event)
        deployment.join_node_at(0, 1.5)
        deployment.run(duration=2.5)
        # Promotion strictly after the transfer began: the joiner paid
        # for the snapshot slices and the rebuild before voting.
        assert started["promoted"] > started["at"]
        joiner = deployment.groups[0].members[-1]
        sponsor = deployment.groups[0].members[0]
        assert sponsor.available_entries <= joiner.available_entries

    def test_commits_continue_during_join(self):
        deployment = make_deployment()
        deployment.join_node_at(0, 0.8)
        metrics = deployment.run(duration=2.0)
        assert metrics.throughput > 0


class TestLeave:
    def test_leave_of_leader_hands_off(self):
        deployment = make_deployment()
        events = collect_reconfigs(deployment)
        handoffs = []
        deployment.bus.subscribe(ReconfigHandoff, handoffs.append)
        group = deployment.groups[1]
        leader_index = group.pbft.leader.index
        deployment.leave_node_at(1, leader_index, 1.0)
        deployment.run(duration=2.5)
        assert len(group.members) == 4
        assert group.pbft.leader.index != leader_index
        assert [e.kind for e in events] == ["leave"]
        assert deployment.membership.view_of(1).epoch == 1
        assert handoffs and handoffs[0].from_index == leader_index

    def test_leave_of_absent_node_is_a_noop(self):
        deployment = make_deployment()
        events = collect_reconfigs(deployment)
        deployment.leave_node_at(0, 99, 1.0)
        deployment.run(duration=1.5)
        assert [e.kind for e in events] == ["leave_noop"]
        assert deployment.membership.epoch == 0

    def test_resize_grows_and_announces(self):
        deployment = make_deployment()
        events = collect_reconfigs(deployment)
        deployment.resize_group_at(1, 6, 1.0)
        deployment.run(duration=2.0)
        assert len(deployment.groups[1].members) == 6
        kinds = [e.kind for e in events]
        assert kinds[0] == "resize" and "join" in kinds


class TestLeaderMove:
    def test_explicit_move_to_index(self):
        deployment = make_deployment()
        events = collect_reconfigs(deployment)
        group = deployment.groups[2]
        old = group.pbft.leader.index
        target = next(
            n.index for n in group.members if n.index != old
        )
        deployment.move_leader_at(2, 1.0, to_index=target)
        deployment.run(duration=2.0)
        assert group.pbft.leader.index == target
        assert [e.kind for e in events] == ["leader_move"]
        assert deployment.membership.view_of(2).leader.index == target

    def test_telemetry_watch_moves_off_throttled_leader(self):
        deployment = make_deployment(load=1500.0)
        events = collect_reconfigs(deployment)
        group = deployment.groups[0]
        old = group.pbft.leader
        deployment.reconfig.enable_leader_watch()
        deployment.sim.schedule_at(
            1.0,
            lambda: deployment.network.set_node_bandwidth(old.addr, 2e6),
        )
        metrics = deployment.run(duration=3.0)
        moves = [e for e in events if e.kind == "leader_move" and e.gid == 0]
        assert moves, "leader watch never reacted to the NIC backlog"
        assert group.pbft.leader is not old
        assert metrics.throughput > 0


class TestDegradeRegion:
    def test_degrade_throttles_and_restores_without_epoch_bump(self):
        deployment = make_deployment()
        events = collect_reconfigs(deployment)
        network = deployment.network
        member = deployment.groups[0].members[1]
        original = network._wan_up[member.addr].rate
        deployment.degrade_region_at(0, 1.0, 1.5, 4e6)

        probes = {}
        deployment.sim.schedule_at(
            1.2, lambda: probes.update(mid=network._wan_up[member.addr].rate)
        )
        deployment.run(duration=2.0)
        assert probes["mid"] == 4e6
        assert network._wan_up[member.addr].rate == original
        kinds = [e.kind for e in events]
        assert kinds == ["degrade_region", "restore_region"]
        assert deployment.membership.epoch == 0  # QoS only: no new epoch

    def test_commits_continue_while_degraded(self):
        deployment = make_deployment()
        deployment.degrade_region_at(0, 0.8, 1.6, 4e6)
        metrics = deployment.run(duration=2.2)
        assert metrics.throughput > 0
