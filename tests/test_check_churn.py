"""Checker coverage for churn: the reconfiguration fault grammar, the
20-seed safety sweep, directed churn-plus-fault scenarios, weak-variant
detection with shrinking and replay, and bit-determinism of churn runs."""

import json

import pytest

from repro.check import (
    CheckConfig,
    FaultOp,
    FaultSchedule,
    ScenarioConfig,
    generate_schedule,
    replay_trace,
    run_episode,
    shrink_schedule,
)
from repro.check.explorer import SCENARIO_STREAM, _record_trace
from repro.check.scenarios import CHURN_KINDS, KINDS
from repro.protocols import GeoDeployment, protocol_by_name
from repro.sim.rng import RngRegistry
from repro.topology import scaled_cluster
from repro.workloads import make_workload

#: Churn episodes need 5-node groups so a graceful leave keeps a viable
#: quorum afterwards.
CHURN = CheckConfig(
    nodes_per_group=5, scenario=ScenarioConfig(churn=True)
)

#: Staggered graceful leaves that empty group 0 entirely: the weak
#: variant (commit quorum 1) keeps committing while the group shrinks,
#: so the unreplicated tail dies with the last member.
LEAVE_OF_QUORUM = FaultSchedule(
    tuple(
        FaultOp(kind="leave", at=2.0 + 0.05 * i, gid=0, index=i)
        for i in range(5)
    )
).canonicalize()


def _gen(seed, config=None, nodes_per_group=5):
    rng = RngRegistry(seed).stream(SCENARIO_STREAM)
    return generate_schedule(
        rng,
        scaled_cluster(n_groups=3, nodes_per_group=nodes_per_group),
        config or ScenarioConfig(churn=True),
    )


class TestChurnGrammar:
    def test_churn_off_never_draws_churn_ops(self):
        for seed in range(20):
            schedule = _gen(seed, ScenarioConfig())
            assert all(op.kind in KINDS for op in schedule.ops)

    def test_churn_draws_are_deterministic(self):
        assert _gen(11) == _gen(11)
        assert any(
            op.kind in CHURN_KINDS
            for seed in range(10)
            for op in _gen(seed).ops
        )

    def test_churn_budgets_hold(self):
        config = ScenarioConfig(churn=True, min_ops=4, max_ops=8)
        for seed in range(30):
            schedule = _gen(seed, config)
            churn_ops = [op for op in schedule.ops if op.kind in CHURN_KINDS]
            assert len(churn_ops) <= config.max_churn_ops
            departures = {}
            for op in schedule.ops:
                if op.kind == "leave":
                    departures[op.gid] = departures.get(op.gid, 0) + 1
            for gid, count in departures.items():
                assert 5 - count >= 4  # leaves keep groups quorate

    def test_leaves_may_target_the_leader_index(self):
        # Index 0 (the initial leader) must be drawable — its departure
        # exercises the hand-off path.
        indices = {
            op.index
            for seed in range(60)
            for op in _gen(seed).ops
            if op.kind == "leave"
        }
        assert 0 in indices


class TestCanonicalization:
    """Satellite: shrinking canonicalizes op ordering and timestamps, so
    shrunk schedules replay from a stable (seed, schedule) key."""

    MESSY = FaultSchedule(
        (
            FaultOp(kind="leave", at=1.50000001, gid=0, index=1),
            FaultOp(kind="join", at=0.123456789, gid=2),
            FaultOp(kind="degrade_region", at=1.5, gid=1, until=1.87654321,
                    bandwidth=5_000_000.123456),
        )
    )

    def test_canonicalize_is_a_fixed_point(self):
        canonical = self.MESSY.canonicalize()
        assert canonical.canonicalize() == canonical
        assert canonical != self.MESSY  # it actually normalised something

    def test_canonical_ops_are_sorted_and_rounded(self):
        canonical = self.MESSY.canonicalize()
        assert [op.kind for op in canonical.ops] == [
            "join", "degrade_region", "leave",
        ]
        assert canonical.ops[2].at == 1.5
        assert canonical.ops[1].until == 1.8765

    def test_canonical_form_survives_json_roundtrip(self):
        canonical = self.MESSY.canonicalize()
        decoded = FaultSchedule.from_jsonable(
            json.loads(json.dumps(canonical.to_jsonable()))
        )
        assert decoded == canonical
        assert decoded.canonicalize() == decoded

    def test_without_is_shrink_idempotent(self):
        for i in range(len(self.MESSY)):
            once = self.MESSY.without(i)
            assert once.canonicalize() == once
            for j in range(len(once)):
                assert once.without(j).canonicalize() == once.without(j)

    def test_generated_schedules_are_already_canonical(self):
        for seed in range(10):
            schedule = _gen(seed)
            assert schedule.canonicalize() == schedule


class TestChurnSweep:
    def test_twenty_seed_churn_sweep_is_clean_on_massbft(self):
        for seed in range(20):
            result = run_episode("massbft", seed, CHURN)
            assert result.ok, (
                f"seed {seed} violated "
                f"{sorted({v.invariant for v in result.violations})} under "
                f"{result.schedule.describe()}"
            )
            assert result.committed > 0


class TestDirectedChurnScenarios:
    def test_join_during_partition(self):
        schedule = FaultSchedule(
            (
                FaultOp(kind="partition", at=1.0, gid=1, until=1.4),
                FaultOp(kind="join", at=1.1, gid=1),
            )
        ).canonicalize()
        result = run_episode("massbft", 4, CHURN, schedule=schedule)
        assert result.ok and result.committed > 0

    def test_leave_of_current_leader(self):
        schedule = FaultSchedule(
            (FaultOp(kind="leave", at=1.0, gid=2, index=0),)
        ).canonicalize()
        result = run_episode("massbft", 4, CHURN, schedule=schedule)
        assert result.ok and result.committed > 0

    def test_group_resize_under_load(self):
        schedule = FaultSchedule(
            (
                FaultOp(kind="group_resize", at=1.0, gid=0, count=7),
                FaultOp(kind="crash_node", at=1.3, gid=0, index=2),
            )
        ).canonicalize()
        result = run_episode("massbft", 4, CHURN, schedule=schedule)
        assert result.ok and result.committed > 0


class TestWeakVariantUnderChurn:
    """The checker must catch history loss a leave-of-quorum provokes in
    the weak variant — and prove the stock protocol survives it."""

    @pytest.fixture(scope="class")
    def weak_result(self):
        return run_episode("massbft-weak", 7, CHURN, schedule=LEAVE_OF_QUORUM)

    def test_stock_protocol_survives_leave_of_quorum(self):
        result = run_episode("massbft", 7, CHURN, schedule=LEAVE_OF_QUORUM)
        assert result.ok and result.committed > 0

    def test_weak_variant_loses_committed_entries(self, weak_result):
        assert any(
            v.invariant == "committed-entry-lost"
            for v in weak_result.violations
        )

    def test_shrink_keeps_only_the_necessary_leaves(self, weak_result):
        padded = FaultSchedule(
            LEAVE_OF_QUORUM.ops
            + (
                FaultOp(kind="slow_node", at=0.6, gid=1, index=2,
                        bandwidth=8e6),
                FaultOp(kind="leader_move", at=0.9, gid=2),
            )
        ).canonicalize()
        result = run_episode("massbft-weak", 7, CHURN, schedule=padded)
        assert result.violations
        shrunk = shrink_schedule(
            "massbft-weak", 7, padded, CHURN,
            target_invariants={"committed-entry-lost"},
        )
        assert len(shrunk) < len(padded)
        assert all(op.kind == "leave" for op in shrunk.ops)
        assert shrunk.canonicalize() == shrunk

    def test_trace_records_and_replays_identically(self, weak_result, tmp_path):
        path = _record_trace(weak_result, CHURN, tmp_path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro.check/1"
        assert header["violations"]
        # The event log carries the churn markers, epochs included.
        records = [
            json.loads(line) for line in path.read_text().splitlines()[1:]
        ]
        reconfigs = [r for r in records if r["event"] == "reconfig"]
        assert [r["kind"] for r in reconfigs] == ["leave"] * 5
        assert [r["epoch"] for r in reconfigs] == [1, 2, 3, 4, 5]
        reproduced, fresh = replay_trace(path)
        assert reproduced
        assert fresh.violation_keys() == weak_result.violation_keys()


class TestChurnDeterminism:
    SCHEDULE = FaultSchedule(
        (
            FaultOp(kind="join", at=0.8, gid=0),
            FaultOp(kind="leave", at=1.1, gid=1, index=0),
            FaultOp(kind="leader_move", at=1.3, gid=2),
            FaultOp(kind="degrade_region", at=1.5, gid=0, until=1.9,
                    bandwidth=5e6),
        )
    ).canonicalize()

    def _run(self):
        deployment = GeoDeployment(
            scaled_cluster(n_groups=3, nodes_per_group=5),
            protocol_by_name("massbft"),
            make_workload("ycsb-a"),
            offered_load=1200.0,
            seed=9,
            observers="all",
        )
        tracer = deployment.attach_tracer()
        self.SCHEDULE.apply(deployment)
        deployment.run(duration=3.0)
        trace = tracer.build()
        ledgers = {
            repr(node.addr): list(node.ledger.order())
            for node in deployment.nodes.values()
            if node.is_observer and node.ledger is not None
        }
        markers = [
            (span.name, span.start, span.args["epoch"])
            for span in trace.reconfig_spans
        ]
        epoch_lane = list(trace.telemetry.series("group/g0/epoch").points)
        return ledgers, markers, epoch_lane

    def test_same_seed_same_churn_schedule_is_bit_identical(self):
        a = self._run()
        b = self._run()
        assert a == b
        ledgers, markers, epoch_lane = a
        assert any(ledger for ledger in ledgers.values())
        # Epoch markers are present in the traced bundle and the epoch
        # telemetry lane actually advanced past genesis.
        assert [name for name, _, _ in markers] == [
            "reconfig:join_started", "reconfig:join", "reconfig:leave",
            "reconfig:leader_move", "reconfig:degrade_region",
            "reconfig:restore_region",
        ]
        assert epoch_lane[-1][1] >= 1.0
