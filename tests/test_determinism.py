"""Cross-process determinism of seeded deployment runs.

The perf work (vectorised kernels, event-loop fast path, caches, GC
gating) is only admissible if seeded runs stay *bit-identical*. This
test runs the same short fig08-style nationwide point in two fresh
Python processes and requires the committed count, the per-group
observer state digests, and the exact number of simulator events
processed to match — any reordered RNG draw, float expression, or
eliminated event shows up here.
"""

import json
import pathlib
import subprocess
import sys

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

FINGERPRINT_SCRIPT = f"""
import json, sys
sys.path.insert(0, {SRC!r})
from repro.protocols import GeoDeployment, protocol_by_name
from repro.topology import nationwide_cluster
from repro.workloads import make_workload

deployment = GeoDeployment(
    nationwide_cluster(nodes_per_group=4),
    protocol_by_name("massbft"),
    make_workload("ycsb-a"),
    offered_load=8_000.0,
    seed=7,
)
metrics = deployment.run(duration=0.8, warmup=0.2)
digests = []
for gid in range(deployment.n_groups):
    store = deployment.observer_of(gid).pipeline.store
    sample = sorted(store._data)[:64]
    digests.append(store.state_digest(sample=sample).hex())
print(json.dumps({{
    "committed": metrics.committed,
    "events": deployment.sim.events_processed,
    "digests": digests,
}}, sort_keys=True))
"""


def _run_once() -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", FINGERPRINT_SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_seeded_run_is_bit_identical_across_processes():
    first = _run_once()
    second = _run_once()
    assert first["committed"] > 0
    assert first["events"] > 0
    assert all(d for d in first["digests"])
    assert first == second
