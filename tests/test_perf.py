"""Tests for the ``repro perf`` regression harness."""

import json

from repro.perf import BenchConfig, compare_to_baseline, run_perf, write_report
from repro.perf.harness import measure_ops_per_sec
from repro.perf.kernels import (
    build_gather_kernels,
    build_kernels,
    force_no_numpy,
)

#: Millisecond-scale settings so the suite stays fast.
TINY = BenchConfig(
    kernel_seconds=0.02,
    repeats=1,
    e2e_duration=0.4,
    e2e_warmup=0.1,
    e2e_runs=1,
    e2e_warmup_runs=0,
    quick=True,
)


def test_measure_ops_per_sec_positive():
    rate = measure_ops_per_sec(lambda: sum(range(50)), 0.01, 1)
    assert rate > 0


def test_kernel_registry_names_unique():
    kernels = build_kernels() + build_gather_kernels()
    names = [k.name for k in kernels]
    assert len(names) == len(set(names))
    assert "calibration.spin" in names
    assert any(name.startswith("erasure.") for name in names)
    assert any(name.startswith("crypto.") for name in names)
    assert any(name.startswith("sim.") for name in names)
    assert any(name.startswith("workload.") for name in names)


def test_gather_kernels_empty_without_numpy():
    with force_no_numpy():
        assert build_gather_kernels() == []


def test_run_perf_kernels_only_without_numpy():
    """The harness must run end to end on a numpy-less install."""
    with force_no_numpy():
        report = run_perf(TINY, end_to_end=False)
    assert report["numpy"] is False
    assert "end_to_end" not in report
    assert all(
        result["ops_per_sec"] > 0 for result in report["kernels"].values()
    )


def test_run_perf_full_report(tmp_path):
    report = run_perf(TINY, end_to_end=True)
    assert report["schema"] == "repro-perf/1"
    e2e = report["end_to_end"]
    assert e2e["sim_seconds_per_wall_second"] > 0
    assert e2e["committed"] > 0
    assert report["normalized_end_to_end"] > 0

    out = tmp_path / "BENCH_perf.json"
    write_report(report, out)
    loaded = json.loads(out.read_text())
    assert loaded["kernels"].keys() == report["kernels"].keys()

    # Same run as its own baseline: ratio 1.0, within tolerance.
    verdict = compare_to_baseline(loaded, loaded, tolerance=0.30)
    assert verdict["ok"]
    assert abs(verdict["end_to_end_ratio"] - 1.0) < 1e-9

    # A baseline 2x faster than this run is a regression.
    faster = dict(loaded)
    faster["normalized_end_to_end"] = loaded["normalized_end_to_end"] * 2
    verdict = compare_to_baseline(loaded, faster, tolerance=0.30)
    assert not verdict["ok"]
    assert "regressed" in verdict["reason"]


def test_compare_without_end_to_end_is_ok():
    report = {"kernels": {"a": {"ops_per_sec": 10.0}}}
    baseline = {"kernels": {"a": {"ops_per_sec": 20.0}}}
    verdict = compare_to_baseline(report, baseline)
    assert verdict["ok"]
    assert verdict["end_to_end_ratio"] is None
    assert verdict["kernel_ratios"]["a"] == 0.5


def test_cli_perf_no_end_to_end(tmp_path, capsys):
    from repro.cli import main

    output = tmp_path / "bench.json"
    code = main(
        [
            "perf",
            "--quick",
            "--no-end-to-end",
            "--output",
            str(output),
            "--baseline",
            str(tmp_path / "missing.json"),
        ]
    )
    assert code == 0
    assert json.loads(output.read_text())["quick"] is True
    assert "wrote" in capsys.readouterr().out


def test_sim_section_in_report():
    report = run_perf(TINY, end_to_end=False, lanes=2)
    sim = report["sim"]
    assert sim["digest_match"] is True
    assert sim["events"] > 0
    assert sim["events_per_sec"] > 0
    assert sim["laned_events_per_sec"] > 0
    assert sim["lane_speedup"] > 0
    assert report["normalized_sim_events"] > 0


def test_sim_digest_mismatch_fails_gate():
    report = {
        "kernels": {},
        "sim": {"digest_match": False, "cores": 1, "lanes": 2},
    }
    verdict = compare_to_baseline(report, {"kernels": {}})
    assert not verdict["ok"]
    assert "diverged" in verdict["reason"]
    assert verdict["sim_digest_match"] is False


def test_lane_speedup_gated_only_with_cores():
    slow = {
        "kernels": {},
        "sim": {
            "digest_match": True,
            "cores": 8,
            "lanes": 2,
            "lane_speedup": 1.1,
        },
    }
    verdict = compare_to_baseline(slow, {"kernels": {}})
    assert verdict["lane_speedup_gated"]
    assert not verdict["ok"]
    assert "2x floor" in verdict["reason"]

    # The same number on a small machine is informational, not a failure.
    slow_small = dict(slow, sim=dict(slow["sim"], cores=2))
    verdict = compare_to_baseline(slow_small, {"kernels": {}})
    assert not verdict["lane_speedup_gated"]
    assert verdict["ok"]


def test_sim_events_rate_regression_fails_gate():
    report = {
        "kernels": {},
        "sim": {"digest_match": True, "cores": 1, "lanes": 1},
        "normalized_sim_events": 1.0,
    }
    baseline = {"kernels": {}, "normalized_sim_events": 2.0}
    verdict = compare_to_baseline(report, baseline, tolerance=0.30)
    assert not verdict["ok"]
    assert "sim events/s regressed" in verdict["reason"]
    assert abs(verdict["sim_events_ratio"] - 0.5) < 1e-9
