"""Transport-level tests: leader unicast, bijective, encoded bijective."""

import os

import pytest

from repro.core.entry import LogEntry
from repro.core.replication import (
    BijectiveTransport,
    EncodedBijectiveTransport,
    LeaderUnicastTransport,
)
from repro.sim.core import Simulator
from repro.sim.network import Network, NodeAddress
from repro.sim.node import SimNode
from tests.conftest import fast_costs


class Harness:
    def __init__(self, transport_cls, sizes=(4, 4), coding=None, payload=b""):
        self.sim = Simulator()
        rtts = {
            (i, j): 0.020
            for i in range(len(sizes))
            for j in range(i + 1, len(sizes))
        }
        self.net = Network(self.sim, rtt_matrix=rtts)
        self.members = {}
        for gid, n in enumerate(sizes):
            self.members[gid] = [
                SimNode(self.sim, self.net, NodeAddress(gid, i)) for i in range(n)
            ]
        self.delivered = []  # (addr, entry_id, time)
        self.entries = {}
        kwargs = {}
        if coding is not None:
            kwargs["coding"] = coding
        self.transport = transport_cls(
            self.members,
            deliver=lambda node, eid: self.delivered.append(
                (node.addr, eid, self.sim.now)
            ),
            get_entry=lambda eid: self.entries[eid],
            costs=fast_costs(),
            **kwargs,
        )
        payload = payload or os.urandom(2000)
        self.entry = LogEntry(gid=0, seq=1, payload=payload, declared_size=len(payload))
        self.entries[self.entry.entry_id] = self.entry

    def replicate(self):
        group0 = self.members[0]
        self.transport.replicate(self.entry, group0, group0[0])
        self.sim.run(until=5.0)

    def receivers(self, gid):
        return {addr for addr, eid, _ in self.delivered if addr.group == gid}


class TestLeaderUnicast:
    def test_all_nodes_receive(self):
        h = Harness(LeaderUnicastTransport, sizes=(4, 4, 4))
        h.replicate()
        for gid, nodes in h.members.items():
            assert h.receivers(gid) == {n.addr for n in nodes}

    def test_each_node_delivered_once(self):
        h = Harness(LeaderUnicastTransport, sizes=(4, 4))
        h.replicate()
        addrs = [addr for addr, _, _ in h.delivered]
        assert len(addrs) == len(set(addrs))

    def test_leader_sends_f_plus_one_copies_per_group(self):
        h = Harness(LeaderUnicastTransport, sizes=(7, 7, 7))
        h.replicate()
        # f=2 for n=7: 3 copies to each of the 2 remote groups.
        assert h.transport.monitor_counters["wan_entry_copies"] == 6

    def test_byzantine_receivers_tolerated(self):
        h = Harness(LeaderUnicastTransport, sizes=(4, 4))
        # f=1 for n=4: leader sends to 2 receivers; one is Byzantine and
        # silently drops, the correct one forwards to the whole group.
        h.members[1][0].make_byzantine()
        h.replicate()
        correct = {n.addr for n in h.members[1] if not n.byzantine}
        assert correct <= h.receivers(1)

    def test_byzantine_sender_garbage_rejected(self):
        h = Harness(LeaderUnicastTransport, sizes=(4, 4))
        h.members[0][0].make_byzantine()
        h.replicate()
        # Origin group still has the entry (local consensus), but the
        # garbage copies fail certificate verification at group 1.
        assert h.receivers(1) == set()

    def test_wan_traffic_is_copies_times_entry(self):
        h = Harness(LeaderUnicastTransport, sizes=(7, 7))
        h.replicate()
        expected = 3 * (h.entry.size_bytes + h.transport.cert_size + 32)
        assert h.net.wan_bytes_total == expected


class TestBijective:
    def test_all_nodes_receive(self):
        h = Harness(BijectiveTransport, sizes=(7, 7))
        h.replicate()
        assert len(h.receivers(1)) == 7

    def test_f1_plus_f2_plus_1_copies(self):
        h = Harness(BijectiveTransport, sizes=(7, 7))
        h.replicate()
        assert h.transport.monitor_counters["wan_entry_copies"] == 5  # 2+2+1

    def test_distinct_senders_used(self):
        h = Harness(BijectiveTransport, sizes=(7, 7))
        h.replicate()
        senders = {
            addr: bytes_sent
            for addr, bytes_sent in h.net.wan_bytes_by_node.items()
            if addr.group == 0 and bytes_sent > 0
        }
        assert len(senders) == 5

    def test_worst_case_faults_still_deliver(self):
        h = Harness(BijectiveTransport, sizes=(7, 7))
        for node in h.members[0][3:5]:  # f1=2 Byzantine senders
            node.make_byzantine()
        for node in h.members[1][:2]:  # f2=2 Byzantine receivers
            node.make_byzantine()
        h.replicate()
        correct = {n.addr for n in h.members[1] if not n.byzantine}
        assert correct <= h.receivers(1)


class TestEncodedBijectiveSimulated:
    def test_all_nodes_rebuild(self):
        h = Harness(EncodedBijectiveTransport, sizes=(4, 7), coding="simulated")
        h.replicate()
        assert len(h.receivers(1)) == 7
        assert len(h.receivers(0)) == 4  # origin group via local consensus

    def test_chunk_count_follows_plan(self):
        h = Harness(EncodedBijectiveTransport, sizes=(4, 7), coding="simulated")
        h.replicate()
        assert h.transport.monitor_counters["wan_chunks"] == 28

    def test_traffic_near_plan_overhead(self):
        h = Harness(EncodedBijectiveTransport, sizes=(7, 7), coding="simulated")
        h.replicate()
        plan = h.transport.plan_for(0, 1)
        payload_traffic = plan.overhead * h.entry.size_bytes
        # Within 2x: proofs, headers and per-link certificates add a
        # bounded overhead on top of the coded payload bytes.
        assert payload_traffic <= h.net.wan_bytes_total <= 2 * payload_traffic

    def test_every_node_sends_equally(self):
        h = Harness(EncodedBijectiveTransport, sizes=(4, 4), coding="simulated")
        h.replicate()
        sent = [
            h.net.wan_bytes_by_node[n.addr]
            for n in h.members[0]
        ]
        assert len(set(sent)) <= 2  # equal up to the one-off cert bytes
        assert min(sent) > 0

    def test_byzantine_receivers_tolerated(self):
        h = Harness(EncodedBijectiveTransport, sizes=(7, 7), coding="simulated")
        for node in h.members[1][1:3]:
            node.make_byzantine()
        h.replicate()
        correct = {n.addr for n in h.members[1] if not n.byzantine}
        assert correct <= h.receivers(1)

    def test_byzantine_senders_tolerated(self):
        h = Harness(EncodedBijectiveTransport, sizes=(7, 7), coding="simulated")
        for node in h.members[0][3:5]:
            node.make_byzantine()
        h.replicate()
        assert len(h.receivers(1)) >= 5

    def test_combined_worst_case(self):
        h = Harness(EncodedBijectiveTransport, sizes=(7, 7), coding="simulated")
        for node in h.members[0][5:7]:
            node.make_byzantine()
        for node in h.members[1][1:3]:
            node.make_byzantine()
        h.replicate()
        correct = {n.addr for n in h.members[1] if not n.byzantine}
        assert correct <= h.receivers(1)
        assert h.transport.monitor_counters.get("rebuild_failures", 0) >= 1


class TestEncodedBijectiveReal:
    def test_real_coding_roundtrip(self):
        payload = os.urandom(3000)
        h = Harness(
            EncodedBijectiveTransport, sizes=(4, 7), coding="real", payload=payload
        )
        h.replicate()
        assert len(h.receivers(1)) == 7

    def test_real_coding_with_tampering(self):
        payload = os.urandom(1500)
        h = Harness(
            EncodedBijectiveTransport, sizes=(4, 7), coding="real", payload=payload
        )
        h.members[0][3].make_byzantine()
        h.members[1][2].make_byzantine()
        h.replicate()
        correct = {n.addr for n in h.members[1] if not n.byzantine}
        assert correct <= h.receivers(1)

    def test_bad_coding_mode_rejected(self):
        with pytest.raises(ValueError):
            Harness(EncodedBijectiveTransport, sizes=(4, 4), coding="bogus")
