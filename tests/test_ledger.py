"""Tests for transactions, state store, Aria execution, blocks, ledger."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import LogEntry
from repro.ledger.block import GENESIS_HASH, Subchain
from repro.ledger.execution import AriaExecutor, ExecutionPipeline
from repro.ledger.ledger import GlobalLedger
from repro.ledger.state import KVStore, table_key
from repro.ledger.transactions import Transaction, serialize_batch


def tx(kind="t", reads=(), writes=(), **params):
    return Transaction(
        kind=kind,
        read_keys=tuple(reads),
        write_keys=tuple(writes),
        params=dict(params),
    )


class TestTransaction:
    def test_wire_size_includes_envelope(self):
        t = tx(writes=("k",))
        assert t.size_bytes > 64  # at least the signature

    def test_explicit_payload_size(self):
        t = Transaction(kind="t", read_keys=(), write_keys=(), payload_bytes=100)
        assert t.size_bytes == 80 + 100

    def test_serialize_pads_to_wire_size(self):
        t = Transaction(kind="t", read_keys=("a",), write_keys=(), payload_bytes=50)
        assert len(t.serialize()) == t.size_bytes

    def test_serialize_batch_roundtrippable_lengths(self):
        batch = tuple(tx(writes=(f"k{i}",)) for i in range(5))
        blob = serialize_batch(batch)
        # Parse the length-prefixed framing back out.
        offset, count = 0, 0
        while offset < len(blob):
            length = int.from_bytes(blob[offset : offset + 4], "big")
            offset += 4 + length
            count += 1
        assert count == 5 and offset == len(blob)

    def test_unique_ids(self):
        assert tx().tx_id != tx().tx_id


class TestKVStore:
    def test_basic_rw(self):
        store = KVStore()
        store.put_row("t", 1, {"a": 1})
        assert store.read_row("t", 1) == {"a": 1}
        assert store.read_row("t", 2, "default") == "default"
        assert table_key("t", 1) in store

    def test_apply_writes_batch(self):
        store = KVStore()
        store.apply_writes({"a": 1, "b": 2})
        assert store.get("a") == 1
        assert store.writes_applied == 2
        assert store.batches_applied == 1

    def test_scan_prefix(self):
        store = KVStore()
        store.put("t/1", "x")
        store.put("t/2", "y")
        store.put("u/1", "z")
        assert dict(store.scan_prefix("t/")) == {"t/1": "x", "t/2": "y"}

    def test_state_digest_changes_with_writes(self):
        store = KVStore()
        d0 = store.state_digest()
        store.apply_writes({"a": 1})
        assert store.state_digest() != d0

    def test_state_digest_sampling(self):
        s1, s2 = KVStore(), KVStore()
        s1.apply_writes({"a": 1})
        s2.apply_writes({"a": 2})
        assert s1.state_digest(sample=["a"]) != s2.state_digest(sample=["a"])


class TestAriaExecutor:
    def test_no_conflicts_all_commit(self):
        ex = AriaExecutor()
        batch = [tx(writes=(f"k{i}",)) for i in range(10)]
        result = ex.execute_batch(batch)
        assert len(result.committed) == 10 and not result.aborted

    def test_waw_first_writer_wins(self):
        ex = AriaExecutor()
        # Read-modify-write transactions: the later writer's read was
        # stale, so it aborts (first writer wins).
        first = tx(reads=("hot",), writes=("hot",))
        second = tx(reads=("hot",), writes=("hot",))
        result = ex.execute_batch([first, second])
        assert result.committed == [first]
        assert result.aborted == [second]

    def test_blind_writers_all_commit_last_wins(self):
        store = KVStore()
        ex = AriaExecutor(store)
        ex.register_logic("set", lambda s, t: {"k": t.params["v"]})
        first = tx(kind="set", writes=("k",), v=1)
        second = tx(kind="set", writes=("k",), v=2)
        result = ex.execute_batch([first, second])
        assert len(result.committed) == 2
        assert store.get("k") == 2

    def test_raw_aborts_reader(self):
        ex = AriaExecutor()
        writer = tx(writes=("k",))
        reader = tx(reads=("k",))
        result = ex.execute_batch([writer, reader])
        assert result.committed == [writer]
        assert result.aborted == [reader]

    def test_reader_before_writer_both_commit(self):
        # Aria reads from the batch-start snapshot: a read ordered before
        # the write saw consistent data.
        ex = AriaExecutor()
        reader = tx(reads=("k",))
        writer = tx(writes=("k",))
        result = ex.execute_batch([reader, writer])
        assert len(result.committed) == 2

    def test_write_write_read_chain(self):
        ex = AriaExecutor()
        t1 = tx(writes=("a",))  # blind write commits
        t2 = tx(reads=("a",), writes=("b",))  # stale read of a: aborts
        t3 = tx(reads=("b",))  # b was reserved by t2: aborts
        result = ex.execute_batch([t1, t2, t3])
        assert result.committed == [t1]
        assert result.aborted == [t2, t3]

    def test_full_logic_applies_writes(self):
        store = KVStore()
        store.put("acct/1", 100)
        ex = AriaExecutor(store)
        ex.register_logic(
            "debit",
            lambda s, t: {"acct/1": s.get("acct/1") - t.params["amt"]},
        )
        result = ex.execute_batch(
            [tx(kind="debit", reads=("acct/1",), writes=("acct/1",), amt=30)]
        )
        assert len(result.committed) == 1
        assert store.get("acct/1") == 70

    def test_empty_batch(self):
        result = AriaExecutor().execute_batch([])
        assert result.attempts == 0 and result.abort_rate == 0.0

    def test_determinism_across_replicas(self):
        batches = []
        rng = random.Random(5)
        keys = [f"k{i}" for i in range(8)]
        for _ in range(6):
            batches.append(
                [
                    tx(
                        reads=tuple(rng.sample(keys, 2)),
                        writes=tuple(rng.sample(keys, 2)),
                    )
                    for _ in range(12)
                ]
            )
        outcomes = []
        for _ in range(2):
            ex = AriaExecutor()
            out = []
            for batch in batches:
                result = ex.execute_batch(list(batch))
                out.append(tuple(t.tx_id for t in result.committed))
            outcomes.append(out)
        assert outcomes[0] == outcomes[1]

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_committed_disjoint_write_reservations(self, data):
        """No two committed transactions in one batch wrote the same key."""
        keys = [f"k{i}" for i in range(5)]
        batch = []
        for _ in range(data.draw(st.integers(1, 15))):
            writes = data.draw(st.sets(st.sampled_from(keys), max_size=3))
            reads = data.draw(st.sets(st.sampled_from(keys), max_size=3))
            batch.append(tx(reads=tuple(reads), writes=tuple(writes)))
        result = AriaExecutor().execute_batch(batch)
        seen = set()
        for t in result.committed:
            if t.read_keys:  # blind writers may legally overlap
                assert not (set(t.write_keys) & seen)
            seen |= set(t.write_keys)


class TestExecutionPipeline:
    def test_aborted_carry_over_and_eventually_commit(self):
        pipe = ExecutionPipeline()
        hot = [tx(reads=("hot",), writes=("hot",)) for _ in range(4)]
        result = pipe.execute_entry(hot)
        assert len(result.committed) == 1
        committed = len(result.committed)
        for _ in range(5):
            committed += len(pipe.execute_entry([]).committed)
        assert committed == 4
        assert not pipe.carryover

    def test_retry_counter_increments(self):
        pipe = ExecutionPipeline()
        t1 = tx(reads=("h",), writes=("h",))
        t2 = tx(reads=("h",), writes=("h",))
        pipe.execute_entry([t1, t2])
        assert t2.retries == 1

    def test_abort_rate(self):
        pipe = ExecutionPipeline()
        pipe.execute_entry(
            [tx(reads=("h",), writes=("h",)), tx(reads=("h",), writes=("h",))]
        )
        assert pipe.abort_rate == pytest.approx(0.5)


class TestBlocksAndLedger:
    def entry(self, gid, seq):
        return LogEntry(gid=gid, seq=seq, payload=f"{gid}:{seq}".encode())

    def test_subchain_linkage(self):
        chain = Subchain(0)
        chain.append_entry(self.entry(0, 1))
        chain.append_entry(self.entry(0, 2))
        assert chain.height == 2
        assert chain.verify()
        assert chain.blocks[0].parent_hash == GENESIS_HASH
        assert chain.blocks[1].parent_hash == chain.blocks[0].block_hash

    def test_subchain_rejects_wrong_group_or_gap(self):
        chain = Subchain(0)
        with pytest.raises(ValueError):
            chain.append_entry(self.entry(1, 1))
        with pytest.raises(ValueError):
            chain.append_entry(self.entry(0, 5))

    def test_ledger_orders_and_chains(self):
        ledger = GlobalLedger(2)
        ledger.append(self.entry(0, 1))
        ledger.append(self.entry(1, 1))
        ledger.append(self.entry(0, 2))
        assert [r.position for r in ledger.records] == [0, 1, 2]
        assert ledger.height == 3
        assert len(ledger.order()) == 3

    def test_ledger_matches_detects_divergence(self):
        a, b = GlobalLedger(2), GlobalLedger(2)
        a.append(self.entry(0, 1))
        b.append(self.entry(0, 1))
        assert a.matches(b)
        a.append(self.entry(1, 1))
        b.append(self.entry(0, 2))  # divergent order
        assert not a.matches(b)

    def test_ledger_prefix_match(self):
        a, b = GlobalLedger(1), GlobalLedger(1)
        a.append(self.entry(0, 1))
        a.append(self.entry(0, 2))
        b.append(self.entry(0, 1))
        assert a.matches(b)  # b is a prefix of a

    def test_divergence_pinpoints_first_forked_height(self):
        a, b = GlobalLedger(2), GlobalLedger(2)
        for gid, seq in [(0, 1), (1, 1), (0, 2)]:
            a.append(self.entry(gid, seq))
            b.append(self.entry(gid, seq))
        a.append(self.entry(0, 3))
        b.append(self.entry(1, 2))  # fork at height 3
        a.append(self.entry(1, 2))
        b.append(self.entry(0, 3))
        assert a.divergence(b) == 3
        assert b.divergence(a) == 3

    def test_divergence_none_for_matching_prefix(self):
        a, b = GlobalLedger(1), GlobalLedger(1)
        a.append(self.entry(0, 1))
        a.append(self.entry(0, 2))
        b.append(self.entry(0, 1))
        assert a.divergence(b) is None  # prefix, not a fork
        assert GlobalLedger(1).divergence(GlobalLedger(1)) is None

    def test_divergence_at_genesis(self):
        a, b = GlobalLedger(2), GlobalLedger(2)
        a.append(self.entry(0, 1))
        b.append(self.entry(1, 1))
        assert a.divergence(b) == 0
