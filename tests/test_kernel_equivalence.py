"""Classic vs laned kernel equivalence, verified across processes.

The laned kernel is only admissible if it is a *drop-in*: for every
scenario the classic kernel can run, the laned kernel — at any worker
count — must produce bit-identical results. Each fingerprint runs in a
fresh Python subprocess because transaction ids are drawn from a
process-global counter: two deployments in one interpreter legitimately
produce different state digests, so in-process comparison would be
meaningless (see ``test_determinism.py``).

The fingerprint covers the committed count, simulator event count,
per-group observer state digests, the metrics summary, and the SHA-256
of the exported span JSONL — any reordered event, RNG draw, or float
expression between kernels shows up in at least one of these.
"""

import json
import pathlib
import subprocess
import sys

import pytest

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

FINGERPRINT_TEMPLATE = """
import hashlib, json, pathlib, sys, tempfile
sys.path.insert(0, {src!r})
from repro.protocols import GeoDeployment, protocol_by_name
from repro.topology import nationwide_cluster, scaled_cluster
from repro.workloads import make_workload

scenario = {scenario!r}
if scenario == "fig08":
    cluster = nationwide_cluster(nodes_per_group=4)
    load = 8_000.0
else:
    cluster = scaled_cluster(n_groups=3, nodes_per_group=5)
    load = 1_500.0

deployment = GeoDeployment(
    cluster,
    protocol_by_name("massbft"),
    make_workload("ycsb-a"),
    offered_load=load,
    seed=7,
    kernel={kernel!r},
    workers={workers!r},
)
if scenario == "churn":
    deployment.join_node_at(0, 0.25)
    deployment.crash_node_at(1, 2, 0.35)
tracer = deployment.attach_tracer()
metrics = deployment.run(duration=0.8, warmup=0.2)
digests = []
for gid in range(deployment.n_groups):
    store = deployment.observer_of(gid).pipeline.store
    sample = sorted(store._data)[:64]
    digests.append(store.state_digest(sample=sample).hex())

from repro.obs.export import export_span_jsonl
with tempfile.TemporaryDirectory() as tmp:
    spans_path = export_span_jsonl(tracer.build(), str(pathlib.Path(tmp) / "spans.jsonl"))
    span_bytes = pathlib.Path(spans_path).read_bytes()

print(json.dumps({{
    "committed": metrics.committed,
    "events": deployment.sim.events_processed,
    "digests": digests,
    "summary": metrics.summary(),
    "spans_sha256": hashlib.sha256(span_bytes).hexdigest(),
    "span_count": span_bytes.count(b"\\n"),
}}, sort_keys=True))
"""


def _fingerprint(scenario: str, kernel: str, workers: int = 1) -> dict:
    script = FINGERPRINT_TEMPLATE.format(
        src=SRC, scenario=scenario, kernel=kernel, workers=workers
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("scenario", ["fig08", "churn"])
def test_laned_kernel_is_bit_identical_to_classic(scenario):
    classic = _fingerprint(scenario, "classic")
    assert classic["committed"] > 0
    assert classic["span_count"] > 0
    for workers in (1, 2, 4):
        laned = _fingerprint(scenario, "laned", workers=workers)
        assert laned == classic, (
            f"laned kernel (workers={workers}) diverged from classic "
            f"on {scenario}"
        )


def test_lane_report_shows_conservative_execution():
    """The strict kernel's cross-lane slack must clear the plan lookahead
    on a real protocol run — proof the decoupled schedule is admissible."""
    script = f"""
import json, sys
sys.path.insert(0, {SRC!r})
from repro.protocols import GeoDeployment, protocol_by_name
from repro.topology import nationwide_cluster
from repro.workloads import make_workload

deployment = GeoDeployment(
    nationwide_cluster(nodes_per_group=4),
    protocol_by_name("massbft"),
    make_workload("ycsb-a"),
    offered_load=8_000.0,
    seed=7,
    kernel="laned",
)
deployment.run(duration=0.8, warmup=0.2)
print(json.dumps(deployment.lane_report(), sort_keys=True))
"""
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["cross_lane_posts"] > 0
    assert report["conservative_ok"]
    assert report["min_cross_slack"] >= report["lookahead"] - 1e-12
    # Every per-group lane did real work (index 0 is the WAN lane).
    assert all(count > 0 for count in report["events_by_lane"][1:])
