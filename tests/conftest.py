"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.costs import CostModel
from repro.crypto.keystore import KeyStore
from repro.sim.core import Simulator
from repro.sim.network import Network, NodeAddress
from repro.sim.node import SimNode
from repro.topology.cluster import ClusterConfig, GroupConfig


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A 3-group network with 30 ms RTTs everywhere."""
    rtts = {(i, j): 0.030 for i in range(3) for j in range(i + 1, 3)}
    return Network(sim, rtt_matrix=rtts)


@pytest.fixture
def keystore() -> KeyStore:
    return KeyStore(seed=42)


def make_group(sim: Simulator, network: Network, gid: int, n: int):
    """Create n plain SimNodes in group gid."""
    return [SimNode(sim, network, NodeAddress(gid, i)) for i in range(n)]


def tiny_cluster(sizes=(4, 4, 4), wan_bandwidth: float = 20e6) -> ClusterConfig:
    """A small test cluster with uniform 20 ms RTTs."""
    groups = [GroupConfig(gid=i, n_nodes=n) for i, n in enumerate(sizes)]
    rtts = {
        (i, j): 0.020
        for i in range(len(sizes))
        for j in range(i + 1, len(sizes))
    }
    return ClusterConfig(
        groups=groups, rtt_matrix=rtts, wan_bandwidth=wan_bandwidth, name="tiny"
    )


def fast_costs() -> CostModel:
    """A cost model with cheap crypto, for protocol-logic tests."""
    return CostModel(
        tx_verify_seconds=1e-6,
        sign_seconds=1e-7,
        sig_verify_seconds=1e-7,
        tx_execute_seconds=1e-6,
    )
