"""Unit tests for the traffic subsystem: arrival processes, tenant
mixes, hotspot drift, and the reworked ClientLoad admission paths."""

import math

import pytest

from repro.protocols.runtime.load import ClientLoad
from repro.sim.monitor import Histogram
from repro.sim.rng import RngRegistry
from repro.traffic import (
    ConstantCurve,
    ConstantRate,
    DiurnalCurve,
    FlashCrowdCurve,
    HotspotDrift,
    MMPPProcess,
    PoissonProcess,
    Tenant,
    TenantMix,
    TrafficSpec,
    gold_silver_bronze,
)
from repro.workloads import make_workload


def stream(name, seed=11):
    return RngRegistry(seed).stream(name)


class TestConstantRate:
    def test_matches_legacy_metronome(self):
        # The historical hot loop: next += 1.0/rate per arrival.
        rate = 937.0
        step = 1.0 / rate
        expected, t = [], 0.0
        while t <= 0.25:
            expected.append(t)
            t += step
        process = ConstantRate(rate)
        assert process.take_until(0.25) == expected

    def test_chunked_equals_single_drain(self):
        single = ConstantRate(1234.0).take_until(0.5)
        chunked_proc = ConstantRate(1234.0)
        chunked = []
        for i in range(1, 11):
            chunked.extend(chunked_proc.take_until(0.05 * i))
        assert chunked == single

    def test_drop_until_matches_legacy_aging(self):
        rate = 800.0
        process = ConstantRate(rate)
        # Legacy: missed = int((horizon - next) * rate); next += missed/rate.
        missed = process.drop_until(0.1)
        assert missed == int(0.1 * rate)
        assert process.next_arrival == pytest.approx(missed / rate)
        assert process.drop_until(0.1) in (0, 1)  # nothing much left

    def test_max_n_caps_and_resumes(self):
        process = ConstantRate(1000.0)
        first = process.take_until(0.1, max_n=25)
        assert len(first) == 25
        rest = process.take_until(0.1)
        assert len(first) + len(rest) in (100, 101)
        assert rest[0] > first[-1]

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            ConstantRate(-5.0)


class TestPoissonProcess:
    def test_deterministic_from_stream(self):
        a = PoissonProcess(ConstantCurve(2000.0), stream("p")).take_until(1.0)
        b = PoissonProcess(ConstantCurve(2000.0), stream("p")).take_until(1.0)
        assert a == b

    def test_chunked_equals_single_drain(self):
        single = PoissonProcess(ConstantCurve(1500.0), stream("p")).take_until(1.0)
        proc = PoissonProcess(ConstantCurve(1500.0), stream("p"))
        chunked = []
        for i in range(1, 21):
            chunked.extend(proc.take_until(0.05 * i, max_n=37))
        chunked.extend(proc.take_until(1.0))
        assert chunked == single

    def test_rate_is_roughly_right(self):
        times = PoissonProcess(ConstantCurve(3000.0), stream("p")).take_until(2.0)
        assert 5200 <= len(times) <= 6800  # 6000 expected, generous slack
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_drop_until_is_strict_and_preserves_pending(self):
        proc = PoissonProcess(ConstantCurve(1000.0), stream("p"))
        dropped = proc.drop_until(0.5)
        assert dropped > 300
        times = proc.take_until(1.0)
        assert times and times[0] >= 0.5

    def test_thinning_follows_the_curve(self):
        # A flash crowd should put most arrivals inside the spike window.
        curve = FlashCrowdCurve(100.0, 5000.0, start=0.4, duration=0.4, ramp=0.05)
        times = PoissonProcess(curve, stream("p")).take_until(1.2)
        inside = [t for t in times if 0.4 <= t <= 0.8]
        assert len(inside) > 0.8 * len(times)


class TestMMPPProcess:
    def test_deterministic_and_monotone(self):
        states = ((3000.0, 0.1), (200.0, 0.2))
        a = MMPPProcess(states, stream("m")).take_until(2.0)
        b = MMPPProcess(states, stream("m")).take_until(2.0)
        assert a == b
        assert all(y >= x for x, y in zip(a, a[1:]))

    def test_idle_state_produces_gaps(self):
        # Zero-rate state: arrivals only while the busy state holds.
        times = MMPPProcess(((4000.0, 0.05), (0.0, 0.05)), stream("m")).take_until(1.0)
        assert times  # the busy state fires
        busy_fraction = len(times) / 4000.0
        assert busy_fraction < 0.9  # far fewer than an always-on 4000 tps

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPProcess((), stream("m"))
        with pytest.raises(ValueError):
            MMPPProcess(((0.0, 0.1),), stream("m"))  # no positive rate
        with pytest.raises(ValueError):
            MMPPProcess(((100.0, 0.0),), stream("m"))  # holding must be > 0


class TestRateCurves:
    def test_diurnal_shape_and_peak(self):
        curve = DiurnalCurve(1000.0, amplitude=0.5, period=1.0)
        assert curve.rate(0.25) == pytest.approx(1500.0)
        assert curve.rate(0.75) == pytest.approx(500.0)
        assert curve.peak == pytest.approx(1500.0)
        with pytest.raises(ValueError):
            DiurnalCurve(1000.0, amplitude=1.0)

    def test_flash_crowd_trapezoid(self):
        curve = FlashCrowdCurve(100.0, 900.0, start=1.0, duration=1.0, ramp=0.25)
        assert curve.rate(0.5) == 100.0
        assert curve.rate(1.125) == pytest.approx(500.0)  # mid-ramp
        assert curve.rate(1.5) == 900.0
        assert curve.rate(2.5) == 100.0
        assert curve.peak == 900.0
        with pytest.raises(ValueError):
            FlashCrowdCurve(100.0, 900.0, start=0.0, duration=0.1, ramp=0.2)

    def test_mean_rate_trapezoid_estimate(self):
        assert ConstantCurve(42.0).mean_rate(0.0, 1.0) == pytest.approx(42.0)
        diurnal = DiurnalCurve(1000.0, amplitude=0.5, period=1.0)
        assert diurnal.mean_rate(0.0, 1.0) == pytest.approx(1000.0, rel=1e-3)


class TestTenantMix:
    def test_shares_split_attribution(self):
        mix = gold_silver_bronze()
        rng = stream("tenants")
        counts = [0, 0, 0]
        for _ in range(20_000):
            counts[mix.pick(rng)] += 1
        assert counts[0] / 20_000 == pytest.approx(0.2, abs=0.02)
        assert counts[2] / 20_000 == pytest.approx(0.5, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantMix([])
        with pytest.raises(ValueError):
            TenantMix([Tenant("a", 1.0), Tenant("a", 1.0)])
        with pytest.raises(ValueError):
            Tenant("a", share=0.0)
        with pytest.raises(ValueError):
            Tenant("a", share=1.0, priority=-1)

    def test_metadata(self):
        mix = gold_silver_bronze()
        assert mix.names == ("gold", "silver", "bronze")
        assert mix.priorities == (3, 2, 1)
        assert [t["name"] for t in mix.describe()] == ["gold", "silver", "bronze"]


class TestHotspotDrift:
    def test_offset_steps_by_stride(self):
        drift = HotspotDrift(rotate_interval=0.5, stride=1000)
        assert drift.offset_at(0.0) == 0
        assert drift.offset_at(0.49) == 0
        assert drift.offset_at(0.5) == 1000
        assert drift.offset_at(1.7) == 3000

    def test_drifted_workload_rotates_hot_keys(self):
        base = make_workload("ycsb-a", n_rows=10_000)
        drifted = make_workload(
            "ycsb-a", n_rows=10_000, hotspot=HotspotDrift(0.5, 997)
        )
        gen_base = base.generator_for(stream("w"))
        gen_drift = drifted.generator_for(stream("w"))
        # Same rng stream, same draw order: keys differ only by the
        # time-dependent offset (mod n_rows).
        for now, want_offset in ((0.1, 0), (0.6, 997), (1.2, 1994)):
            tx_b = gen_base(now)
            tx_d = gen_drift(now)
            assert tx_d.params["key"] == (tx_b.params["key"] + want_offset) % 10_000
            assert tx_d.kind == tx_b.kind

    def test_generate_matches_generator_closure(self):
        drift = HotspotDrift(0.5, 997)
        workload = make_workload("ycsb-a", n_rows=10_000, hotspot=drift)
        from_closure = workload.generator_for(stream("w"))(0.7)
        from_method = workload.generate(stream("w"), now=0.7)
        assert from_method.params["key"] == from_closure.params["key"]


class TestTrafficSpec:
    def test_constant_spec_is_the_metronome(self):
        spec = TrafficSpec.constant(1200.0, n_groups=3)
        process = spec.process_for(1, stream("g1"))
        assert isinstance(process, ConstantRate)
        assert process.rate == 1200.0
        assert spec.offered_load(range(3)) == {0: 1200.0, 1: 1200.0, 2: 1200.0}

    def test_peak_rate_fallback(self):
        spec = TrafficSpec.constant({0: 500.0, 1: 900.0}, n_groups=2)
        assert spec.peak_rate(0) == 500.0
        assert spec.peak_rate(7) == 900.0  # unknown gid: max envelope

    def test_mmpp_peak_is_max_state_rate(self):
        spec = TrafficSpec.mmpp(((4000.0, 0.25), (800.0, 0.5)), n_groups=2)
        assert spec.peak_rate(0) == 4000.0

    def test_flash_crowd_only_heats_hot_groups(self):
        spec = TrafficSpec.flash_crowd(
            1000.0, 4000.0, start=0.5, duration=1.0, n_groups=3, hot_groups=(1,)
        )
        assert spec.peak_rate(1) == 4000.0
        assert spec.peak_rate(0) == 1000.0
        assert spec.describe()["detail"]["hot_groups"] == [1]

    def test_describe_is_json_friendly(self):
        import json

        spec = TrafficSpec.mmpp(
            ((4000.0, 0.25), (800.0, 0.5)),
            n_groups=2,
            tenants=gold_silver_bronze(),
            hotspot=HotspotDrift(0.4, 350_003),
        )
        doc = spec.describe()
        json.dumps(doc, sort_keys=True)  # must not raise
        assert doc["name"] == "mmpp"
        assert len(doc["tenants"]) == 3


def make_load(**kwargs):
    kwargs.setdefault("rng", stream("load"))
    return ClientLoad(make_workload("ycsb-a"), **kwargs)


class TestClientLoadProcesses:
    def test_explicit_constant_process_matches_rate_arg(self):
        by_rate = make_load(rate=1000.0, rng=stream("load"))
        by_process = make_load(process=ConstantRate(1000.0), rng=stream("load"))
        a = by_rate.take(now=0.25)
        b = by_process.take(now=0.25)
        assert [t.created_at for t in a] == [t.created_at for t in b]
        assert [t.params for t in a] == [t.params for t in b]

    def test_requires_rate_or_process(self):
        with pytest.raises(ValueError):
            make_load()
        with pytest.raises(ValueError):
            make_load(rate=0.0)

    def test_tenants_require_their_own_stream(self):
        with pytest.raises(ValueError):
            make_load(rate=100.0, tenants=gold_silver_bronze())

    def test_offered_equals_admitted_plus_dropped_simple(self):
        load = make_load(rate=1000.0, queue_seconds=0.02)
        load.take(now=0.0)
        load.take(now=1.0)  # most of the second ages out
        assert load.offered == load.admitted + load.dropped
        assert load.dropped > 900

    def test_buffered_accounting_with_queue_remainder(self):
        load = make_load(
            process=PoissonProcess(ConstantCurve(2000.0), stream("arrivals")),
            queue_seconds=0.5,
        )
        taken = len(load.take(now=0.2, max_n=50))
        assert taken == 50
        # Remainder is still queued (inside the admission window), so
        # offered > admitted with nothing dropped yet.
        assert load.offered > load.admitted == 50
        assert load.dropped == 0

    def test_aging_interacts_with_max_n_cap(self):
        load = make_load(
            process=PoissonProcess(ConstantCurve(2000.0), stream("arrivals")),
            queue_seconds=0.05,
        )
        load.take(now=0.2, max_n=10)  # 10 admitted, rest queued
        load.take(now=1.0, max_n=10)  # queue aged out, fresh tail admitted
        assert load.dropped > 0
        queued = load.offered - load.admitted - load.dropped
        assert queued >= 0
        assert all(
            t.created_at >= 0.95 for t in load.take(now=1.0)
        )  # survivors are fresh

    def test_chunked_takes_are_deterministic_per_process(self):
        def drain(step_count):
            load = make_load(
                process=PoissonProcess(ConstantCurve(1500.0), stream("arrivals")),
                rng=stream("load"),
                queue_seconds=10.0,  # no aging: pure accumulation check
            )
            out = []
            for i in range(1, step_count + 1):
                out.extend(load.take(now=i * (1.0 / step_count)))
            return [(t.created_at, t.params["key"]) for t in out]

        assert drain(4) == drain(20)

    def test_priority_shedding_prefers_gold(self):
        mix = gold_silver_bronze()
        load = make_load(
            process=PoissonProcess(ConstantCurve(4000.0), stream("arrivals")),
            tenants=mix,
            tenant_rng=stream("tenants"),
            queue_seconds=0.02,
        )
        # Tight cap: admit far less than offered, repeatedly, so the
        # low-priority backlog ages out while gold keeps flowing.
        for i in range(1, 21):
            load.take(now=i * 0.05, max_n=20)
        gold, silver, bronze = range(3)
        assert load.dropped_by_tenant[bronze] > load.dropped_by_tenant[gold]
        assert load.offered == load.admitted + load.dropped + sum(
            len(q) for q in load._queues
        )
        # Gold admission ratio strictly better than bronze's.
        gold_ratio = load.admitted_by_tenant[gold] / load.offered_by_tenant[gold]
        bronze_ratio = (
            load.admitted_by_tenant[bronze] / load.offered_by_tenant[bronze]
        )
        assert gold_ratio > bronze_ratio

    def test_tenant_stamped_on_transactions(self):
        load = make_load(
            process=ConstantRate(500.0),
            tenants=gold_silver_bronze(),
            tenant_rng=stream("tenants"),
        )
        txns = load.take(now=0.1)
        assert txns
        assert {t.tenant for t in txns} <= {0, 1, 2}


class TestP999:
    def test_histogram_p999_nearest_rank(self):
        hist = Histogram("lat")
        for i in range(1, 2001):
            hist.observe(i / 1000.0)
        assert hist.p99 == pytest.approx(1.98)
        assert hist.p999 == pytest.approx(1.999)
        assert hist.p999 >= hist.p99 >= hist.p50

    def test_empty_histogram(self):
        assert Histogram("lat").p999 == 0.0


class TestDiurnalCompositionSanity:
    def test_diurnal_poisson_mean_tracks_curve(self):
        curve = DiurnalCurve(2000.0, amplitude=0.8, period=2.0)
        times = PoissonProcess(curve, stream("p")).take_until(2.0)
        # Mean over a full period is the base rate.
        assert len(times) == pytest.approx(4000, rel=0.15)
        # Crest quarter (~t in [0, 1]) must outdraw the trough quarter.
        crest = sum(1 for t in times if 0.25 <= t < 0.75)
        trough = sum(1 for t in times if 1.25 <= t < 1.75)
        assert crest > 2 * trough
        assert not math.isnan(curve.mean_rate(0.0, 2.0))
