"""Tests for the full PBFT replica: normal case, faults, view changes,
checkpoints, and the prepare-skipping accept variant."""

import hashlib

import pytest

from repro.consensus.messages import PrePrepare
from repro.consensus.pbft import (
    ModeledPbftGroup,
    PbftConfig,
    PbftReplica,
    value_digest,
)
from repro.crypto.keystore import KeyStore
from repro.sim.core import Simulator
from repro.sim.network import Network, NodeAddress
from repro.sim.node import SimNode
from tests.conftest import fast_costs


class Value:
    """A proposable value with digest/size/tx_count."""

    def __init__(self, payload, size=1000, tx_count=3):
        self.payload = payload
        self.size_bytes = size
        self.tx_count = tx_count

    @property
    def digest(self):
        return hashlib.sha256(repr(self.payload).encode()).digest()


class Harness:
    def __init__(self, n=4, checkpoint_interval=128):
        self.sim = Simulator()
        self.net = Network(self.sim, rtt_matrix={})
        self.keystore = KeyStore(seed=5)
        members = tuple(NodeAddress(0, i) for i in range(n))
        self.nodes = [SimNode(self.sim, self.net, a) for a in members]
        self.committed = {a: [] for a in members}
        config = PbftConfig(
            members=members, checkpoint_interval=checkpoint_interval
        )
        self.replicas = [
            PbftReplica(
                node,
                config,
                self.keystore,
                on_committed=self._cb(node.addr),
                costs=fast_costs(),
            )
            for node in self.nodes
        ]

    def _cb(self, addr):
        def on_committed(seq, value, cert):
            self.committed[addr].append((seq, value, cert))

        return on_committed

    @property
    def leader(self):
        return next(r for r in self.replicas if r.is_leader)

    def live_histories(self):
        return [
            [(s, v.payload) for s, v, _ in self.committed[n.addr]]
            for n in self.nodes
            if not n.crashed
        ]


class TestNormalCase:
    def test_single_proposal_commits_everywhere(self):
        h = Harness()
        h.leader.propose(Value("v0"))
        h.sim.run(until=0.5)
        for hist in h.live_histories():
            assert hist == [(0, "v0")]

    def test_sequence_order_preserved(self):
        h = Harness()
        for i in range(10):
            h.leader.propose(Value(f"v{i}"))
        h.sim.run(until=0.5)
        expected = [(i, f"v{i}") for i in range(10)]
        for hist in h.live_histories():
            assert hist == expected

    def test_certificates_verify(self):
        h = Harness()
        h.leader.propose(Value("v0"))
        h.sim.run(until=0.5)
        for addr, commits in h.committed.items():
            _, _, cert = commits[0]
            assert cert.signer_count >= 3  # 2f+1 for n=4
            assert cert.verify(h.keystore, quorum=3)

    def test_skip_prepare_commits(self):
        h = Harness()
        h.leader.propose(Value("certified-elsewhere"), skip_prepare=True)
        h.sim.run(until=0.5)
        for hist in h.live_histories():
            assert hist == [(0, "certified-elsewhere")]

    def test_non_leader_cannot_propose(self):
        h = Harness()
        follower = next(r for r in h.replicas if not r.is_leader)
        with pytest.raises(RuntimeError):
            follower.propose(Value("x"))

    def test_larger_group(self):
        h = Harness(n=7)
        for i in range(5):
            h.leader.propose(Value(f"v{i}"))
        h.sim.run(until=0.5)
        for hist in h.live_histories():
            assert [p for _, p in hist] == [f"v{i}" for i in range(5)]


class TestFaultTolerance:
    def test_commits_despite_f_silent_followers(self):
        h = Harness(n=4)
        followers = [r for r in h.replicas if not r.is_leader]
        followers[0].node.crash()
        h.leader.propose(Value("v0"))
        h.sim.run(until=0.5)
        for hist in h.live_histories():
            assert hist == [(0, "v0")]

    def test_stalls_with_more_than_f_crashes(self):
        h = Harness(n=4)
        followers = [r for r in h.replicas if not r.is_leader]
        followers[0].node.crash()
        followers[1].node.crash()
        h.leader.propose(Value("v0"))
        h.sim.run(until=0.5)
        for hist in h.live_histories():
            assert hist == []

    def test_view_change_elects_new_leader(self):
        h = Harness(n=4)
        h.leader.propose(Value("v0"))
        h.sim.run(until=0.5)
        old_leader = h.leader
        old_leader.node.crash()
        for r in h.replicas:
            if not r.node.crashed:
                r.suspect_leader()
        h.sim.run(until=3.0)
        new_leader = next(
            r for r in h.replicas if not r.node.crashed and r.is_leader
        )
        assert new_leader is not old_leader
        new_leader.propose(Value("v1"))
        h.sim.run(until=4.0)
        for hist in h.live_histories():
            assert [p for _, p in hist] == ["v0", "v1"]

    def test_view_change_preserves_prepared_value(self):
        # The leader commits locally then crashes; followers prepared the
        # value, so the new view must re-propose and commit it.
        h = Harness(n=4)
        h.leader.propose(Value("must-survive"))
        h.sim.run(until=0.002)  # prepares are in flight
        h.leader.node.crash()
        for r in h.replicas:
            if not r.node.crashed:
                r.suspect_leader()
        h.sim.run(until=5.0)
        survivors = h.live_histories()
        # Either all committed it, or none did — never divergence.
        payload_sets = {tuple(p for _, p in hist) for hist in survivors}
        assert len(payload_sets) == 1

    def test_partial_broadcast_recovers_via_timeout_view_change(self):
        # A faulty leader sends its pre-prepare to only two followers:
        # they prepare but can never gather 2f+1 commits, their progress
        # timers fire, and the resulting view change (joined by the third
        # follower via the f+1 rule) re-proposes the prepared value.
        h = Harness(n=4)
        from repro.consensus.messages import PrePrepare
        from repro.consensus.pbft import value_digest
        from repro.sim.network import Message

        leader = h.leader
        value = Value("withheld")
        pp = PrePrepare(view=0, seq=0, digest=value_digest(value), value=value)
        followers = [r for r in h.replicas if not r.is_leader]
        for target in followers[:2]:
            target._on_pre_prepare_msg(
                Message(leader.node.addr, target.node.addr, pp, pp.size_bytes)
            )
        leader.node.crash()
        h.sim.run(until=8.0)
        live = [r for r in h.replicas if not r.node.crashed]
        assert all(r.view > 0 for r in live)
        histories = {
            tuple(p for _, p in hist) for hist in h.live_histories()
        }
        # Agreement: whatever happened, no two live replicas diverge.
        assert len(histories) == 1


class TestCheckpoints:
    def test_log_truncated_after_checkpoint(self):
        h = Harness(n=4, checkpoint_interval=4)
        for i in range(8):
            h.leader.propose(Value(f"v{i}"))
        h.sim.run(until=1.0)
        for r in h.replicas:
            assert r.stable_checkpoint >= 3
            assert all(seq > r.stable_checkpoint for seq in r.slots)

    def test_commits_continue_after_checkpoint(self):
        h = Harness(n=4, checkpoint_interval=2)
        for i in range(6):
            h.leader.propose(Value(f"v{i}"))
        h.sim.run(until=1.0)
        for hist in h.live_histories():
            assert len(hist) == 6


class TestModeledPbft:
    def make(self, n=7):
        sim = Simulator()
        net = Network(sim, rtt_matrix={})
        nodes = [SimNode(sim, net, NodeAddress(0, i)) for i in range(n)]
        group = ModeledPbftGroup(nodes, KeyStore(seed=3), costs=fast_costs())
        seen = {n.addr: [] for n in nodes}
        for node in nodes:
            group.subscribe(node.addr, lambda s, v, c, a=node.addr: seen[a].append((s, v.payload)))
        return sim, nodes, group, seen

    def test_commit_on_all_members(self):
        sim, nodes, group, seen = self.make()
        group.propose(Value("a"))
        group.propose(Value("b"))
        sim.run(until=1.0)
        for addr, hist in seen.items():
            assert hist == [(0, "a"), (1, "b")]

    def test_certificate_quorum(self):
        sim, nodes, group, seen = self.make(n=7)
        assert group.quorum == 5
        group.propose(Value("a"))
        sim.run(until=1.0)

    def test_crashed_member_skipped(self):
        sim, nodes, group, seen = self.make()
        nodes[3].crash()
        group.propose(Value("a"))
        sim.run(until=1.0)
        assert seen[nodes[3].addr] == []
        assert seen[nodes[0].addr] == [(0, "a")]

    def test_stalls_without_quorum(self):
        sim, nodes, group, seen = self.make(n=4)
        nodes[1].crash()
        nodes[2].crash()
        assert group.propose(Value("a")) is None
        sim.run(until=1.0)
        assert all(not h for h in seen.values())

    def test_leader_rotation_on_crash(self):
        sim, nodes, group, seen = self.make()
        nodes[0].crash()
        group.propose(Value("a"))
        sim.run(until=1.0)
        assert group.leader is nodes[1]
        assert seen[nodes[1].addr] == [(0, "a")]

    def test_commit_latency_includes_lan_and_cpu(self):
        sim, nodes, group, seen = self.make()
        times = []
        group.subscribe(
            nodes[1].addr, lambda s, v, c: times.append(sim.now)
        )
        group.propose(Value("a", size=1_000_000, tx_count=0))
        sim.run(until=1.0)
        # 6 MB over 2.5 Gbps LAN ~= 19 ms serialization, plus phases.
        assert times and 0.015 < times[0] < 0.1

    def test_small_group_rejected(self):
        sim = Simulator()
        net = Network(sim, rtt_matrix={})
        nodes = [SimNode(sim, net, NodeAddress(0, i)) for i in range(3)]
        with pytest.raises(ValueError):
            ModeledPbftGroup(nodes, KeyStore())


class TestEquivocatingLeader:
    """A Byzantine leader sends conflicting pre-prepares for one sequence.

    PBFT's safety argument: prepares and commits are bound to the value
    digest, so two conflicting values cannot both gather 2f+1 votes, and
    a replica shown both proposals starts a view change.
    """

    @staticmethod
    def _pre_prepare(value, seq=0, view=0):
        return PrePrepare(
            view=view, seq=seq, digest=value_digest(value), value=value
        )

    def test_split_pre_prepares_never_commit_two_values(self):
        h = Harness(n=5)  # f=1, quorum=3
        a, b = Value("left"), Value("right")
        leader_node = h.nodes[0]
        # The leader equivocates: value A to three followers, B to the
        # fourth, and never votes itself.
        for pp, targets in ((self._pre_prepare(a), (1, 2, 3)),
                            (self._pre_prepare(b), (4,))):
            for i in targets:
                leader_node.send(h.nodes[i].addr, pp, pp.size_bytes)
        h.sim.run(until=2.0)
        committed = {
            addr: [payload.payload for _, payload, _ in entries]
            for addr, entries in h.committed.items()
            if addr != leader_node.addr
        }
        # The majority partition can commit A; nobody may commit B.
        assert all(hist in ([], ["left"]) for hist in committed.values())
        assert any(hist == ["left"] for hist in committed.values())

    def test_conflicting_pre_prepare_triggers_view_change(self):
        h = Harness(n=4)
        a, b = Value("first"), Value("second")
        leader_node = h.nodes[0]
        target = h.replicas[1]
        pp_a = self._pre_prepare(a)
        leader_node.send(target.node.addr, pp_a, pp_a.size_bytes)
        h.sim.run(until=0.1)  # let the value-verify CPU step finish
        assert target.view == 0 and not target._in_view_change
        pp_b = self._pre_prepare(b)
        leader_node.send(target.node.addr, pp_b, pp_b.size_bytes)
        h.sim.run(until=0.2)
        # The second, conflicting proposal is direct proof of leader
        # equivocation: keep the first value, demand a new view.
        assert target._in_view_change or target.view > 0
        assert all(
            payload.payload != "second"
            for entries in h.committed.values()
            for _, payload, _ in entries
        )


class TestViewChangeBackoff:
    """Pins the exponential backoff + seeded jitter schedule for view
    changes: round 0 exact (fault-free timing unchanged), later rounds
    multiply up to the cap, jitter deterministic per replica address."""

    def test_first_round_is_exact(self):
        h = Harness()
        replica = h.replicas[1]
        assert replica.view_change_delay() == replica.config.view_change_timeout

    def test_backoff_grows_to_cap_with_bounded_jitter(self):
        h = Harness()
        replica = h.replicas[1]
        cfg = replica.config
        for round_ in range(1, 7):
            replica._vc_round = round_
            delay = replica.view_change_delay()
            base = min(
                cfg.view_change_timeout * cfg.view_change_backoff**round_,
                cfg.view_change_timeout_max,
            )
            assert base <= delay <= base * (1 + cfg.view_change_jitter) + 1e-12
        # Deep rounds saturate at the cap (plus at most one jitter).
        replica._vc_round = 40
        assert replica.view_change_delay() <= cfg.view_change_timeout_max * (
            1 + cfg.view_change_jitter
        )

    def test_jitter_is_deterministic_per_replica(self):
        h1, h2 = Harness(), Harness()
        for r1, r2 in zip(h1.replicas, h2.replicas):
            r1._vc_round = r2._vc_round = 3
            assert r1.view_change_delay() == r2.view_change_delay()

    def test_jitter_diverges_across_replicas(self):
        h = Harness()
        for replica in h.replicas:
            replica._vc_round = 3
        delays = {replica.view_change_delay() for replica in h.replicas}
        assert len(delays) == len(h.replicas)

    def test_progress_resets_the_backoff_round(self):
        h = Harness()
        h.leader.propose(Value("v0"))
        h.sim.run(until=0.5)
        for replica in h.replicas:
            assert replica._vc_round == 0
