"""Tracing must not perturb the simulation, and must itself be stable.

Two subprocess-based properties (fresh processes, because per-process
global state makes in-process repeat runs incomparable — see
``test_determinism.py``):

* **on/off invariance** — a traced run commits the same transactions,
  processes the same number of simulator events, and produces the same
  ledger digests as an untraced run of the same seed;
* **trace stability** — two traced runs in separate processes export
  byte-identical ``spans.jsonl`` files.
"""

import json
import pathlib
import subprocess
import sys

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

SCRIPT = f"""
import hashlib, json, sys, tempfile, os
sys.path.insert(0, {SRC!r})
from repro.protocols import GeoDeployment, protocol_by_name
from repro.topology import nationwide_cluster
from repro.workloads import make_workload

traced = sys.argv[1] == "traced"
deployment = GeoDeployment(
    nationwide_cluster(nodes_per_group=4),
    protocol_by_name("massbft"),
    make_workload("ycsb-a"),
    offered_load=8_000.0,
    seed=7,
)
tracer = deployment.attach_tracer() if traced else None
metrics = deployment.run(duration=0.8, warmup=0.2)
digests = []
for gid in range(deployment.n_groups):
    store = deployment.observer_of(gid).pipeline.store
    sample = sorted(store._data)[:64]
    digests.append(store.state_digest(sample=sample).hex())
out = {{
    "committed": metrics.committed,
    "events": deployment.sim.events_processed,
    "digests": digests,
}}
if tracer is not None:
    from repro.obs import export_span_jsonl
    path = os.path.join(tempfile.mkdtemp(), "spans.jsonl")
    export_span_jsonl(tracer.build(), path)
    data = open(path, "rb").read()
    out["spans_sha256"] = hashlib.sha256(data).hexdigest()
    out["span_lines"] = data.count(b"\\n")
print(json.dumps(out, sort_keys=True))
"""


def _run(mode: str) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT, mode],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_tracing_does_not_perturb_the_run():
    untraced = _run("untraced")
    traced = _run("traced")
    assert untraced["committed"] > 0
    assert traced["committed"] == untraced["committed"]
    assert traced["digests"] == untraced["digests"]
    # The sampler timer adds events of its own, so event counts are only
    # required to be >= the untraced run's — never fewer.
    assert traced["events"] >= untraced["events"]


def test_span_export_is_byte_identical_across_processes():
    first = _run("traced")
    second = _run("traced")
    assert first["span_lines"] > 0
    assert first["spans_sha256"] == second["spans_sha256"]
    assert first == second
