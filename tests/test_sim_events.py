"""Unit tests for the event queue and simulator core."""

import pytest

from repro.sim.core import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_fifo_within_same_time(self):
        queue = EventQueue()
        fired = []
        for tag in ("a", "b", "c"):
            queue.push(1.0, fired.append, (tag,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == ["a", "b", "c"]

    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        times = []
        while (event := queue.pop()) is not None:
            times.append(event.time)
        assert times == [1.0, 2.0, 3.0]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, fired.append, ("keep",))
        drop = queue.push(0.5, fired.append, ("drop",))
        drop.cancel()
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == ["keep"]
        assert keep.time == 1.0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(0.5, lambda: None)
        queue.push(1.5, lambda: None)
        first.cancel()
        assert queue.peek_time() == 1.5

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0, lambda: None)

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None


class TestVolatileEvents:
    def test_fires_and_returns_to_freelist(self):
        queue = EventQueue()
        fired = []
        queue.push_volatile(1.0, fired.append, ("v",))
        event = queue.pop()
        event.fire()
        queue.recycle(event)
        assert fired == ["v"]
        assert event.callback is None and event.args == ()

    def test_recycled_event_is_reused(self):
        queue = EventQueue()
        first = queue.push_volatile(1.0, lambda: None)
        popped = queue.pop()
        assert popped is first
        queue.recycle(popped)
        second = queue.push_volatile(2.0, lambda: None)
        assert second is first  # same object, fresh fields
        assert second.time == 2.0 and not second.cancelled
        assert second.volatile

    def test_shares_seq_counter_with_push(self):
        # Interleaved volatile and plain pushes at one instant must fire
        # in scheduling order: one tie-break counter, not two.
        queue = EventQueue()
        fired = []
        queue.push(1.0, fired.append, ("a",))
        queue.push_volatile(1.0, fired.append, ("b",))
        queue.push(1.0, fired.append, ("c",))
        queue.push_volatile(1.0, fired.append, ("d",))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == ["a", "b", "c", "d"]

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push_volatile(-1.0, lambda: None)

    def test_simulator_schedule_volatile(self):
        sim = Simulator()
        seen = []
        sim.schedule_volatile(1.0, seen.append, "x")
        sim.schedule_at_volatile(2.0, seen.append, "y")
        sim.run_until_idle()
        assert seen == ["x", "y"]
        # Both events were recycled by the run loop.
        assert len(sim._queue._free) == 2

    def test_volatile_order_matches_plain_schedule(self):
        # The same mixed schedule through volatile and plain paths must
        # produce the same firing order.
        def drive(sim, volatile):
            seen = []
            sched = sim.schedule_volatile if volatile else sim.schedule
            for tag, delay in (("a", 0.2), ("b", 0.1), ("c", 0.2), ("d", 0.0)):
                sched(delay, seen.append, tag)
            sim.run_until_idle()
            return seen

        assert drive(Simulator(), True) == drive(Simulator(), False)


class TestSimulator:
    def test_time_advances_to_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_run_until_advances_even_without_events(self):
        sim = Simulator()
        end = sim.run(until=5.0)
        assert end == 5.0
        assert sim.now == 5.0

    def test_until_excludes_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(3.0, seen.append, 3)
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run(until=4.0)
        assert seen == [1, 3]

    def test_stop_halts_processing(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, seen.append, 2)
        sim.run(until=10.0)
        assert seen == [(1, None)] or seen[0] is not None
        assert len(seen) == 1

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(0.5, seen.append, "nested"))
        sim.run_until_idle()
        assert seen == ["nested"]
        assert sim.now == 1.5

    def test_max_events_bound(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.1, reschedule)

        sim.schedule(0.0, reschedule)
        sim.run(max_events=50)
        assert sim.events_processed == 50

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        error = []

        def inner():
            try:
                sim.run(until=10.0)
            except RuntimeError as exc:
                error.append(exc)

        sim.schedule(0.5, inner)
        sim.run(until=1.0)
        assert len(error) == 1


class TestTimer:
    def test_one_shot(self):
        sim = Simulator()
        fired = []
        sim.set_timer(1.0, lambda: fired.append(sim.now))
        sim.run(until=5.0)
        assert fired == [1.0]

    def test_repeating(self):
        sim = Simulator()
        fired = []
        sim.set_timer(1.0, lambda: fired.append(sim.now), interval=1.0)
        sim.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_stops_timer(self):
        sim = Simulator()
        fired = []
        timer = sim.set_timer(1.0, lambda: fired.append(sim.now), interval=1.0)
        sim.schedule(2.5, timer.cancel)
        sim.run(until=6.0)
        assert fired == [1.0, 2.0]
        assert not timer.active

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        fired = []

        def callback():
            fired.append(sim.now)
            if len(fired) == 2:
                timer.cancel()

        timer = sim.set_timer(1.0, callback, interval=1.0)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_reset_restarts_countdown(self):
        sim = Simulator()
        fired = []
        timer = sim.set_timer(1.0, lambda: fired.append(sim.now))
        sim.schedule(0.5, lambda: timer.reset(1.0))
        sim.run(until=5.0)
        assert fired == [1.5]

    def test_reset_default_delay_one_shot(self):
        # Regression: reset() with no delay on a one-shot timer used to
        # fall back to the (None) interval and crash when scheduling.
        # It must restart the countdown at the original construction delay.
        sim = Simulator()
        fired = []
        timer = sim.set_timer(2.0, lambda: fired.append(sim.now))
        sim.schedule(1.0, timer.reset)
        sim.run(until=10.0)
        assert fired == [3.0]

    def test_reset_default_delay_repeating(self):
        sim = Simulator()
        fired = []
        timer = sim.set_timer(1.0, lambda: fired.append(sim.now), interval=2.0)
        sim.schedule(0.5, timer.reset)
        sim.run(until=6.0)
        assert fired == [2.5, 4.5]

    def test_reset_rearms_fired_one_shot(self):
        sim = Simulator()
        fired = []
        timer = sim.set_timer(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.0, timer.reset)
        sim.run(until=10.0)
        assert fired == [1.0, 3.0]
        assert not timer.active
