"""Unit and property tests for the crypto substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.certificates import QuorumCertificate
from repro.crypto.hashing import combine_digests, digest, digest_hex
from repro.crypto.keystore import KeyStore
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import KeyPair, sign, verify


class TestHashing:
    def test_digest_deterministic(self):
        assert digest(b"hello") == digest(b"hello")
        assert len(digest(b"hello")) == 32

    def test_digest_str_and_bytes_agree(self):
        assert digest("hello") == digest(b"hello")

    def test_digest_hex(self):
        assert digest_hex(b"x") == digest(b"x").hex()

    def test_combine_is_order_sensitive(self):
        a, b = digest(b"a"), digest(b"b")
        assert combine_digests([a, b]) != combine_digests([b, a])

    def test_combine_is_length_delimited(self):
        # ["ab", "c"] must differ from ["a", "bc"].
        assert combine_digests([b"ab", b"c"]) != combine_digests([b"a", b"bc"])


class TestSignatures:
    def test_roundtrip(self):
        kp = KeyPair.generate(b"seed")
        sig = sign(kp, b"message")
        assert verify(kp, b"message", sig)

    def test_wrong_message_rejected(self):
        kp = KeyPair.generate(b"seed")
        sig = sign(kp, b"message")
        assert not verify(kp, b"other", sig)

    def test_wrong_key_rejected(self):
        kp1 = KeyPair.generate(b"one")
        kp2 = KeyPair.generate(b"two")
        sig = sign(kp1, b"message")
        assert not verify(kp2, b"message", sig)

    def test_deterministic_generation(self):
        assert KeyPair.generate(b"s") == KeyPair.generate(b"s")

    def test_random_generation_unique(self):
        assert KeyPair.generate() != KeyPair.generate()


class TestKeyStore:
    def test_register_and_sign(self):
        ks = KeyStore(seed=1)
        ks.register("alice")
        sig = ks.sign_as("alice", b"msg")
        assert ks.verify_from("alice", b"msg", sig)
        assert not ks.verify_from("bob", b"msg", sig)

    def test_verify_any_identifies_signer(self):
        ks = KeyStore(seed=1)
        ks.register("alice")
        ks.register("bob")
        sig = ks.sign_as("bob", b"msg")
        assert ks.verify_any(b"msg", sig) == "bob"
        assert ks.verify_any(b"other", sig) is None

    def test_unknown_identity_raises(self):
        ks = KeyStore()
        with pytest.raises(KeyError):
            ks.sign_as("ghost", b"m")
        with pytest.raises(KeyError):
            ks.public_key("ghost")

    def test_registration_idempotent(self):
        ks = KeyStore(seed=1)
        kp1 = ks.register("alice")
        kp2 = ks.register("alice")
        assert kp1 is kp2
        assert len(ks) == 1

    def test_deterministic_from_seed(self):
        assert KeyStore(seed=9).register("a") == KeyStore(seed=9).register("a")
        assert KeyStore(seed=9).register("a") != KeyStore(seed=8).register("a")


class TestMerkle:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        proof = tree.proof(0)
        assert proof.verify(b"only", tree.root)

    def test_proofs_verify_all_leaves(self):
        leaves = [f"leaf{i}".encode() for i in range(7)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert tree.proof(i).verify(leaf, tree.root)

    def test_tampered_leaf_rejected(self):
        leaves = [f"leaf{i}".encode() for i in range(5)]
        tree = MerkleTree(leaves)
        assert not tree.proof(2).verify(b"tampered", tree.root)

    def test_wrong_index_proof_rejected(self):
        leaves = [f"leaf{i}".encode() for i in range(4)]
        tree = MerkleTree(leaves)
        assert not tree.proof(1).verify(leaves[2], tree.root)

    def test_different_leaf_sets_have_different_roots(self):
        t1 = MerkleTree([b"a", b"b"])
        t2 = MerkleTree([b"a", b"c"])
        assert t1.root != t2.root

    def test_out_of_range_proof(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(IndexError):
            tree.proof(2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_proof_size_accounting(self):
        tree = MerkleTree([bytes([i]) for i in range(16)])
        proof = tree.proof(5)
        assert proof.size_bytes == 8 + 4 * 33  # 4 levels

    @given(
        leaves=st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=33),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_inclusion(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        proof = tree.proof(index)
        assert proof.verify(leaves[index], tree.root)
        # A proof binds to its index's leaf: any *different* leaf fails.
        other = data.draw(st.binary(min_size=0, max_size=40))
        if other != leaves[index]:
            assert not proof.verify(other, tree.root)


class TestQuorumCertificate:
    def make_cert(self, ks, signers, statement=b"stmt"):
        sigs = {}
        for name in signers:
            ks.register(name)
            sigs[name] = ks.sign_as(name, statement)
        return QuorumCertificate.assemble(statement, sigs)

    def test_valid_certificate(self):
        ks = KeyStore(seed=1)
        cert = self.make_cert(ks, ["a", "b", "c"])
        assert cert.verify(ks, quorum=3)
        assert cert.signer_count == 3

    def test_insufficient_quorum(self):
        ks = KeyStore(seed=1)
        cert = self.make_cert(ks, ["a", "b"])
        assert not cert.verify(ks, quorum=3)

    def test_wrong_statement_signature_fails(self):
        ks = KeyStore(seed=1)
        ks.register("a")
        bad = QuorumCertificate.assemble(
            b"statement", {"a": ks.sign_as("a", b"other")}
        )
        assert not bad.verify(ks, quorum=1)

    def test_signer_outside_allowed_set_fails(self):
        ks = KeyStore(seed=1)
        cert = self.make_cert(ks, ["a", "b", "intruder"])
        assert not cert.verify(ks, quorum=2, allowed_signers=["a", "b"])
        assert cert.verify(ks, quorum=3, allowed_signers=["a", "b", "intruder"])

    def test_unregistered_signer_fails(self):
        ks1 = KeyStore(seed=1)
        cert = self.make_cert(ks1, ["a"])
        ks2 = KeyStore(seed=2)  # different PKI
        assert not cert.verify(ks2, quorum=1)

    def test_size_accounting(self):
        ks = KeyStore(seed=1)
        cert = self.make_cert(ks, ["a", "b"])
        assert cert.size_bytes == len(b"stmt") + 2 * 72
