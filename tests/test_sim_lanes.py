"""Tests for the laned simulation kernel (plan, strict kernel, engine)."""

import math
import random

import pytest

from repro.sim import (
    WAN_LANE,
    LanedEngine,
    LanedSimulator,
    LanePlan,
    SimulationBudgetExceeded,
    Simulator,
)
from repro.topology import (
    nationwide_cluster,
    scaled_cluster,
    worldwide_scaled_cluster,
)


class TestLanePlan:
    def test_one_lane_per_group_by_default(self):
        plan = LanePlan.from_cluster(nationwide_cluster())
        assert plan.n_lanes == 3
        assert plan.total_lanes == 4  # + the WAN lane
        assert [plan.lane_of_group(g) for g in range(3)] == [1, 2, 3]

    def test_lookahead_is_min_cross_lane_one_way_latency(self):
        cluster = nationwide_cluster()
        plan = LanePlan.from_cluster(cluster)
        # The fastest pair is Chengdu <-> Hangzhou at 26.7 ms RTT.
        assert plan.lookahead == pytest.approx(0.0267 / 2)

    def test_fewer_lanes_groups_contiguously(self):
        plan = LanePlan.from_cluster(scaled_cluster(7), lanes=2)
        lanes = [plan.lane_of_group(g) for g in range(7)]
        assert lanes == sorted(lanes)
        assert set(lanes) == {1, 2}
        assert plan.groups_of_lane(1) == [0, 1, 2, 3]
        assert plan.groups_of_lane(2) == [4, 5, 6]

    def test_same_lane_pairs_do_not_constrain_lookahead(self):
        cluster = scaled_cluster(4)
        full = LanePlan.from_cluster(cluster)
        coarse = LanePlan.from_cluster(cluster, lanes=2)
        # Dropping pairs from the cross-lane set can only raise the min.
        assert coarse.lookahead >= full.lookahead

    def test_single_lane_free_runs(self):
        plan = LanePlan.from_cluster(nationwide_cluster(), lanes=1)
        assert math.isinf(plan.lookahead)

    def test_worker_partition_is_contiguous_and_total(self):
        plan = LanePlan.from_cluster(worldwide_scaled_cluster(8))
        assert plan.worker_of_lane(WAN_LANE, 4) == 0
        workers = [plan.worker_of_lane(lane, 4) for lane in range(1, 9)]
        assert workers == sorted(workers)
        assert set(workers) == {0, 1, 2, 3}

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            LanePlan(n_groups=0, n_lanes=1, lookahead=0.01)
        with pytest.raises(ValueError):
            LanePlan(n_groups=3, n_lanes=4, lookahead=0.01)
        with pytest.raises(ValueError):
            LanePlan(n_groups=3, n_lanes=2, lookahead=0.0)


def _event_soup(sim, seed=11, until=1.0):
    """A random self-extending event workload; returns the firing order."""
    rng = random.Random(seed)
    order = []

    def fire(tag):
        order.append((sim.now, tag))
        if rng.random() < 0.4 and sim.now < until / 2:
            sim.schedule(rng.random() * 0.1, fire, tag * 31 + 7)

    for i in range(80):
        sim.schedule(rng.random() * until, fire, i)
    sim.run(until=until)
    return order


class TestLanedSimulatorStrict:
    def test_identical_execution_to_classic(self):
        plan = LanePlan.from_cluster(nationwide_cluster())
        assert _event_soup(Simulator()) == _event_soup(LanedSimulator(plan))

    def test_worker_count_is_bookkeeping_only(self):
        plan = LanePlan.from_cluster(nationwide_cluster())
        runs = [
            _event_soup(LanedSimulator(plan, workers=w)) for w in (1, 2, 4)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_lane_attribution_follows_context(self):
        plan = LanePlan.from_cluster(nationwide_cluster())
        sim = LanedSimulator(plan)
        seen = []
        with sim.lane_context(2):
            sim.schedule(0.1, lambda: seen.append(sim.current_lane))
        sim.schedule(0.2, lambda: seen.append(sim.current_lane))  # WAN lane
        sim.run(until=1.0)
        assert seen == [2, WAN_LANE]
        assert sim.events_by_lane[2] == 1
        assert sim.events_by_lane[WAN_LANE] == 1

    def test_events_scheduled_from_event_inherit_its_lane(self):
        plan = LanePlan.from_cluster(nationwide_cluster())
        sim = LanedSimulator(plan)
        lanes = []

        def child():
            lanes.append(sim.current_lane)

        def parent():
            sim.schedule(0.05, child)

        with sim.lane_context(3):
            sim.schedule(0.1, parent)
        sim.run(until=1.0)
        assert lanes == [3]
        assert sim.events_by_lane[3] == 2

    def test_cross_lane_post_records_slack(self):
        plan = LanePlan.from_cluster(nationwide_cluster())
        sim = LanedSimulator(plan)

        def sender():
            sim.post(2, sim.now + 0.02, lambda: None)

        with sim.lane_context(1):
            sim.schedule(0.1, sender)
        sim.run(until=1.0)
        assert sim.cross_lane_posts == 1
        assert sim.min_cross_slack == pytest.approx(0.02)
        report = sim.lane_report()
        assert report["conservative_ok"]  # 20 ms > 13.35 ms lookahead

    def test_slack_below_lookahead_flags_report(self):
        plan = LanePlan.from_cluster(nationwide_cluster())
        sim = LanedSimulator(plan)

        def sender():
            sim.post(2, sim.now + 0.001, lambda: None)

        with sim.lane_context(1):
            sim.schedule(0.1, sender)
        sim.run(until=1.0)
        assert not sim.lane_report()["conservative_ok"]

    def test_timer_repush_keeps_lane(self):
        plan = LanePlan.from_cluster(nationwide_cluster())
        sim = LanedSimulator(plan)
        ticks = []
        with sim.lane_context(1):
            sim.set_timer(0.1, lambda: ticks.append(sim.current_lane), interval=0.1)
        sim.run(until=0.55)
        assert ticks == [1] * 5
        assert sim.events_by_lane[1] == 5


class TestBudgetError:
    def test_run_until_idle_raises_on_exhausted_budget(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationBudgetExceeded) as err:
            sim.run_until_idle(max_events=50)
        assert err.value.max_events == 50
        assert err.value.pending_time > 0
        assert "runaway" in str(err.value)

    def test_clean_drain_does_not_raise(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(0.01 * i, hits.append, i)
        end = sim.run_until_idle(max_events=100)
        assert len(hits) == 10
        assert end == pytest.approx(0.09)

    def test_explicit_stop_does_not_raise(self):
        sim = Simulator()

        def loop():
            if sim.events_processed >= 5:
                sim.stop()
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        sim.run_until_idle(max_events=1000)  # stop() is not budget abuse


class _PingPong:
    """Minimal lane program: bounce a counter between two lanes."""

    def __init__(self, lane, peer, hop=0.05, rounds=20):
        self.sim = Simulator()
        self.lane = lane
        self.peer = peer
        self.hop = hop
        self.rounds = rounds
        self.log = []
        self._post = None

    def start(self, post):
        self._post = post
        if self.lane == 1:
            self.sim.schedule(0.01, self._tick, 0)

    def _tick(self, k):
        self.log.append((self.sim.now, k))
        if k < self.rounds:
            self._post(self.peer, self.sim.now + self.hop, k + 1)

    def deliver(self, arrival, src_lane, payload):
        self.sim.schedule_at(arrival, self._tick, payload)

    def digest(self):
        return repr(self.log)

    def stats(self):
        return {"ticks": len(self.log)}


class TestLanedEngine:
    def _run(self, workers, lookahead=0.05):
        engine = LanedEngine(
            {1: lambda: _PingPong(1, 2), 2: lambda: _PingPong(2, 1)},
            lookahead=lookahead,
            workers=workers,
        )
        return engine.run(until=5.0)

    def test_inline_matches_forked(self):
        inline = self._run(workers=1)
        forked = self._run(workers=2)
        assert inline.digests == forked.digests
        assert inline.events == forked.events == 21
        assert inline.merged_digest() == forked.merged_digest()

    def test_min_post_slack_tracked(self):
        result = self._run(workers=1)
        assert result.min_post_slack == pytest.approx(0.05)

    def test_post_inside_lookahead_rejected(self):
        engine = LanedEngine(
            # Hop of 10 ms against a claimed 50 ms lookahead: unsound.
            {1: lambda: _PingPong(1, 2, hop=0.01),
             2: lambda: _PingPong(2, 1, hop=0.01)},
            lookahead=0.05,
        )
        with pytest.raises(ValueError, match="conservative lookahead"):
            engine.run(until=5.0)

    def test_budget_exhaustion_raises(self):
        class _Runaway:
            def __init__(self):
                self.sim = Simulator()

            def start(self, post):
                self.sim.schedule(0.001, self._loop)

            def _loop(self):
                self.sim.schedule(0.001, self._loop)

            def deliver(self, arrival, src_lane, payload):
                pass

            def digest(self):
                return "runaway"

            def stats(self):
                return {}

        engine = LanedEngine({1: _Runaway}, lookahead=math.inf)
        with pytest.raises(SimulationBudgetExceeded):
            engine.run(until=1e9, max_events=100)

    def test_multiple_lanes_require_finite_lookahead(self):
        with pytest.raises(ValueError, match="finite lookahead"):
            LanedEngine(
                {1: lambda: _PingPong(1, 2), 2: lambda: _PingPong(2, 1)},
                lookahead=math.inf,
            )


class TestLookaheadProperty:
    def test_lookahead_never_admits_early_cross_lane_arrivals(self):
        """Property: for seeded random topologies and lane counts, every
        cross-lane message in a strict-kernel run arrives at least the
        plan lookahead after its send time."""
        for seed in range(8):
            rng = random.Random(seed)
            n_groups = rng.randrange(2, 9)
            rtts = {
                (i, j): 0.02 + rng.random() * 0.18
                for i in range(n_groups)
                for j in range(i + 1, n_groups)
            }

            class _Cluster:
                name = f"random-{seed}"
                rtt_matrix = rtts

            _Cluster.n_groups = n_groups
            lanes = rng.randrange(2, n_groups + 1)
            plan = LanePlan.from_cluster(_Cluster, lanes=lanes)
            sim = LanedSimulator(plan)

            def send(src, dst):
                # Model a network delivery: one-way latency from the matrix.
                key = (src, dst) if src < dst else (dst, src)
                arrival = sim.now + rtts[key] / 2.0
                sim.post(plan.lane_of_group(dst), arrival, lambda: None)

            for _ in range(200):
                src = rng.randrange(n_groups)
                dst = rng.randrange(n_groups)
                if src == dst:
                    continue
                with sim.lane_context(plan.lane_of_group(src)):
                    sim.schedule(rng.random(), send, src, dst)
            sim.run(until=2.0)
            report = sim.lane_report()
            if report["cross_lane_posts"]:
                assert report["min_cross_slack"] >= plan.lookahead - 1e-12
                assert report["conservative_ok"]
