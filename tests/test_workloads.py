"""Tests for the Zipf generator and the three OLTP workloads."""

import random
from collections import Counter

import pytest

from repro.ledger.execution import AriaExecutor, ExecutionPipeline
from repro.ledger.state import KVStore
from repro.workloads import make_workload
from repro.workloads.smallbank import CHECKING, SAVINGS, SmallBankWorkload
from repro.workloads.tpcc import TpccWorkload, district_key
from repro.workloads.ycsb import YcsbWorkload
from repro.workloads.zipf import ZipfGenerator


class TestZipf:
    def test_range(self):
        gen = ZipfGenerator(100, 0.99, random.Random(1))
        samples = [gen.sample() for _ in range(2000)]
        assert all(0 <= s < 100 for s in samples)

    def test_skew_favors_low_ranks(self):
        gen = ZipfGenerator(1000, 0.99, random.Random(2))
        counts = Counter(gen.sample() for _ in range(20000))
        top_10 = sum(counts[i] for i in range(10))
        assert top_10 > 0.3 * 20000  # zipf(0.99): top-10 ranks dominate

    def test_rank_frequencies_decrease(self):
        gen = ZipfGenerator(1000, 0.99, random.Random(3))
        counts = Counter(gen.sample() for _ in range(50000))
        assert counts[0] > counts[10] > counts[200]

    def test_scrambled_spreads_hot_keys(self):
        gen = ZipfGenerator(1000, 0.99, random.Random(4))
        hot = Counter(gen.sample_scrambled() for _ in range(20000))
        top_key, _ = hot.most_common(1)[0]
        assert top_key != 0  # hot keys scattered over the space

    def test_deterministic(self):
        a = ZipfGenerator(100, 0.99, random.Random(7))
        b = ZipfGenerator(100, 0.99, random.Random(7))
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0, 0.99)
        with pytest.raises(ValueError):
            ZipfGenerator(10, 1.5)


class TestFactory:
    def test_names(self):
        assert make_workload("ycsb-a").read_fraction == 0.5
        assert make_workload("YCSB-B").read_fraction == 0.95
        assert make_workload("smallbank").name == "smallbank"
        assert make_workload("tpcc").name == "tpcc"
        with pytest.raises(ValueError):
            make_workload("nope")

    @pytest.mark.parametrize(
        "name,target",
        [("ycsb-a", 201), ("ycsb-b", 150), ("smallbank", 108), ("tpcc", 232)],
    )
    def test_average_sizes_match_paper(self, name, target):
        wl = make_workload(name)
        avg = wl.average_tx_size(random.Random(1), samples=2000)
        assert abs(avg - target) < 0.08 * target


class TestYcsb:
    def test_mix_fractions(self):
        wl = YcsbWorkload(read_fraction=0.95, n_rows=1000)
        rng = random.Random(1)
        kinds = Counter(wl.generate(rng).kind for _ in range(2000))
        assert kinds["ycsb_read"] > 1800

    def test_read_has_no_writes(self):
        wl = YcsbWorkload(read_fraction=1.0, n_rows=100)
        t = wl.generate(random.Random(1))
        assert t.read_keys and not t.write_keys

    def test_update_executes_against_store(self):
        wl = YcsbWorkload(read_fraction=0.0, n_rows=100, materialize_limit=100)
        store = KVStore()
        wl.populate(store)
        ex = AriaExecutor(store)
        wl.register(ex)
        t = wl.generate(random.Random(2))
        result = ex.execute_batch([t])
        assert len(result.committed) == 1
        assert store.get(t.write_keys[0]) == t.params["value"]

    def test_concurrent_updates_same_hot_column_all_commit(self):
        """Blind single-column updates never abort (Aria reordering):
        the last writer in batch order wins deterministically."""
        wl = YcsbWorkload(read_fraction=0.0, n_rows=100)
        store = KVStore()
        ex = AriaExecutor(store)
        wl.register(ex)
        rng = random.Random(3)
        a, b = wl.generate(rng), wl.generate(rng)
        b.params = dict(a.params, value="winner".ljust(100, "y"))
        b.write_keys = a.write_keys
        result = ex.execute_batch([a, b])
        assert len(result.committed) == 2
        assert store.get(a.write_keys[0]).startswith("winner")

    def test_lazy_rows_readable(self):
        wl = YcsbWorkload(read_fraction=1.0, n_rows=10**6, materialize_limit=10)
        store = KVStore()
        wl.populate(store)
        ex = AriaExecutor(store)
        wl.register(ex)
        for _ in range(20):
            t = wl.generate(random.Random(3))
            ex.execute_batch([t])  # must not raise on unmaterialized rows


class TestSmallBank:
    def test_send_payment_conserves_money(self):
        wl = SmallBankWorkload(n_accounts=50, materialize_limit=50)
        store = KVStore()
        wl.populate(store)
        ex = AriaExecutor(store)
        wl.register(ex)
        total_before = sum(v for k, v in store.scan_prefix(f"{CHECKING}/"))
        rng = random.Random(4)
        pipe = ExecutionPipeline(ex)
        payments = [
            t
            for t in (wl.generate(rng) for _ in range(300))
            if t.kind == "sb_send_payment"
        ]
        for p in payments:
            pipe.execute_entry([p])
        total_after = sum(v for k, v in store.scan_prefix(f"{CHECKING}/"))
        assert total_after == total_before

    def test_amalgamate_zeros_source(self):
        wl = SmallBankWorkload(n_accounts=10, materialize_limit=10)
        store = KVStore()
        wl.populate(store)
        ex = AriaExecutor(store)
        wl.register(ex)
        rng = random.Random(5)
        t = next(
            t for t in (wl.generate(rng) for _ in range(200)) if t.kind == "sb_amalgamate"
        )
        ex.execute_batch([t])
        a = t.params["a"]
        assert store.read_row(SAVINGS, a) == 0
        assert store.read_row(CHECKING, a) == 0

    def test_mix_covers_all_kinds(self):
        wl = SmallBankWorkload(n_accounts=100)
        rng = random.Random(6)
        kinds = {wl.generate(rng).kind for _ in range(500)}
        assert len(kinds) == 6

    def test_uniform_access(self):
        wl = SmallBankWorkload(n_accounts=10)
        rng = random.Random(7)
        accounts = Counter(wl.generate(rng).params["a"] for _ in range(5000))
        assert max(accounts.values()) < 3 * min(accounts.values())


class TestTpcc:
    def test_mix_is_50_50(self):
        wl = TpccWorkload(n_warehouses=8)
        rng = random.Random(8)
        kinds = Counter(wl.generate(rng).kind for _ in range(4000))
        assert abs(kinds["tpcc_payment"] - kinds["tpcc_neworder"]) < 400

    def test_payment_updates_warehouse_ytd(self):
        wl = TpccWorkload(n_warehouses=2)
        store = KVStore()
        wl.populate(store)
        ex = AriaExecutor(store)
        wl.register(ex)
        rng = random.Random(9)
        t = next(
            t for t in (wl.generate(rng) for _ in range(50)) if t.kind == "tpcc_payment"
        )
        ex.execute_batch([t])
        w = store.read_row("warehouse", t.params["w"])
        assert w["w_ytd"] == pytest.approx(t.params["amount"])

    def test_neworder_increments_next_o_id(self):
        wl = TpccWorkload(n_warehouses=2)
        store = KVStore()
        wl.populate(store)
        ex = AriaExecutor(store)
        wl.register(ex)
        rng = random.Random(10)
        t = next(
            t
            for t in (wl.generate(rng) for _ in range(50))
            if t.kind == "tpcc_neworder"
        )
        before = store.get(district_key(t.params["w"], t.params["d"]))["next_o_id"]
        ex.execute_batch([t])
        after = store.get(district_key(t.params["w"], t.params["d"]))["next_o_id"]
        assert after == before + 1

    def test_hotspot_conflicts_under_big_batches(self):
        """The Fig 8d effect: few warehouses + large batch => aborts."""
        wl = TpccWorkload(n_warehouses=4)
        store = KVStore()
        wl.populate(store)
        ex = AriaExecutor(store)
        wl.register(ex)
        rng = random.Random(11)
        big_batch = [wl.generate(rng) for _ in range(200)]
        result = ex.execute_batch(big_batch)
        assert result.abort_rate > 0.2

    def test_small_batches_abort_less(self):
        wl = TpccWorkload(n_warehouses=128)
        store = KVStore()
        wl.populate(store)
        rng = random.Random(12)
        big = AriaExecutor(KVStore())
        small = AriaExecutor(KVStore())
        wl.register(big)
        wl.register(small)
        txns = [wl.generate(rng) for _ in range(300)]
        big_rate = big.execute_batch(list(txns)).abort_rate
        small_aborts = 0
        for i in range(0, 300, 30):
            small_aborts += len(small.execute_batch(txns[i : i + 30]).aborted)
        assert small_aborts / 300 < big_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            TpccWorkload(n_warehouses=0)
