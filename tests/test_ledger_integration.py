"""Ledger-level integration: every observer builds the same hash-chained
global ledger, with per-group subchains intact."""

import pytest

from repro.protocols import GeoDeployment, baseline, massbft
from repro.workloads import make_workload
from tests.conftest import tiny_cluster


def deploy(spec, **kwargs):
    return GeoDeployment(
        tiny_cluster((4, 4, 4)),
        spec,
        make_workload("ycsb-a"),
        offered_load=1500,
        seed=51,
        **kwargs,
    )


class TestObserverLedgers:
    @pytest.mark.parametrize("spec", [massbft(), baseline()], ids=lambda s: s.name)
    def test_ledgers_match_across_groups(self, spec):
        deployment = deploy(spec)
        deployment.run(duration=1.5, warmup=0.0)
        ledgers = [
            deployment.observer_of(g).ledger for g in range(3)
        ]
        assert all(ledger.height > 10 for ledger in ledgers)
        for a in ledgers:
            for b in ledgers:
                assert a.matches(b)

    def test_subchains_cover_all_groups(self):
        deployment = deploy(massbft())
        deployment.run(duration=1.5, warmup=0.0)
        ledger = deployment.observer_of(0).ledger
        for gid in range(3):
            subchain = ledger.subchains[gid]
            assert subchain.height > 3
            assert subchain.verify()

    def test_ledger_order_interleaves_groups(self):
        deployment = deploy(massbft())
        deployment.run(duration=1.5, warmup=0.0)
        order = deployment.observer_of(0).ledger.order()
        gids = {eid.gid for eid in order}
        assert gids == {0, 1, 2}
        # Per-group subsequences are in ascending seq order.
        for gid in gids:
            seqs = [eid.seq for eid in order if eid.gid == gid]
            assert seqs == sorted(seqs)

    def test_ledger_heights_close_across_observers(self):
        deployment = deploy(massbft())
        deployment.run(duration=1.5, warmup=0.0)
        heights = [deployment.observer_of(g).ledger.height for g in range(3)]
        assert max(heights) - min(heights) < 30  # within a few rounds

    def test_all_observer_mode_ledgers_match(self):
        deployment = deploy(massbft(), observers="all")
        deployment.run(duration=1.2, warmup=0.0)
        ledgers = [
            node.ledger
            for node in deployment.nodes.values()
            if node.ledger is not None
        ]
        assert len(ledgers) == 12
        reference = max(ledgers, key=lambda led: led.height)
        for ledger in ledgers:
            assert ledger.matches(reference)
