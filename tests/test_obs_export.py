"""Exporters and schema validation: Chrome trace doc, JSONL, bundles."""

import json

import pytest

from repro.obs import (
    SchemaError,
    Tracer,
    chrome_trace_doc,
    export_span_jsonl,
    validate,
    validate_bundle,
    validate_chrome_trace,
    write_bundle,
)
from repro.obs.export import (
    PID_ENTRIES_BASE,
    PID_NETWORK_BASE,
    PID_TELEMETRY,
    _pack_lanes,
)
from repro.obs.schema import SPAN_SCHEMA, validate_span_line
from repro.obs.spans import Span

from tests.test_obs_tracer import small_deployment


@pytest.fixture(scope="module")
def trace():
    deployment = small_deployment()
    tracer = Tracer.attach(deployment, telemetry_interval=0.01)
    deployment.run(duration=1.0, warmup=0.25)
    return tracer.build()


class TestChromeDoc:
    def test_doc_passes_schema(self, trace):
        doc = chrome_trace_doc(trace)
        count = validate_chrome_trace(doc)
        assert count == len(doc["traceEvents"]) > 0

    def test_process_layout(self, trace):
        doc = chrome_trace_doc(trace)
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert PID_ENTRIES_BASE in pids  # g0 entries
        assert PID_NETWORK_BASE in pids  # g0 network
        assert PID_TELEMETRY in pids
        names = {
            (e["pid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert (PID_ENTRIES_BASE, "g0 entries") in names
        assert (PID_TELEMETRY, "telemetry") in names

    def test_entry_lanes_do_not_overlap(self, trace):
        doc = chrome_trace_doc(trace)
        roots = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X"
            and e["cat"] == "entry"
            and e["pid"] == PID_ENTRIES_BASE
        ]
        assert roots
        by_tid = {}
        for event in roots:
            by_tid.setdefault(event["tid"], []).append(event)
        for events in by_tid.values():
            events.sort(key=lambda e: e["ts"])
            for prev, cur in zip(events, events[1:]):
                assert prev["ts"] + prev["dur"] <= cur["ts"]

    def test_counters_carry_values(self, trace):
        doc = chrome_trace_doc(trace)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert all("value" in e["args"] for e in counters)


class TestLanePacking:
    def test_disjoint_spans_share_a_lane(self):
        a = Span(1, "a", "entry", 0.0, 1.0, "t")
        b = Span(2, "b", "entry", 1.0, 2.0, "t")
        assert _pack_lanes([a, b]) == {1: 0, 2: 0}

    def test_overlapping_spans_split_lanes(self):
        a = Span(1, "a", "entry", 0.0, 2.0, "t")
        b = Span(2, "b", "entry", 1.0, 3.0, "t")
        c = Span(3, "c", "entry", 2.5, 4.0, "t")
        lanes = _pack_lanes([a, b, c])
        assert lanes[1] != lanes[2]
        assert lanes[3] == lanes[1]  # reuses lane 0 once `a` ended


class TestBundle:
    def test_write_and_validate_bundle(self, trace, tmp_path):
        paths = write_bundle(trace, str(tmp_path), report_text="hello")
        counts = validate_bundle(paths["trace"], paths["spans"])
        assert counts["trace_events"] > 0
        assert counts["spans"] == len(trace.spans())
        assert (tmp_path / "report.txt").read_text() == "hello\n"
        telemetry = json.loads((tmp_path / "telemetry.json").read_text())
        assert set(telemetry["series"]) == set(trace.telemetry.names())

    def test_repeated_export_is_byte_identical(self, trace, tmp_path):
        first = export_span_jsonl(trace, str(tmp_path / "a.jsonl"))
        second = export_span_jsonl(trace, str(tmp_path / "b.jsonl"))
        assert open(first, "rb").read() == open(second, "rb").read()

    def test_bundle_rejects_corruption(self, trace, tmp_path):
        paths = write_bundle(trace, str(tmp_path))
        lines = open(paths["spans"]).read().splitlines()
        broken = json.loads(lines[0])
        broken["parent_id"] = 10**9  # dangling reference
        lines[0] = json.dumps(broken)
        (tmp_path / "spans.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError, match="unknown parent"):
            validate_bundle(paths["trace"], paths["spans"])


class TestMiniValidator:
    def test_type_mismatch(self):
        with pytest.raises(SchemaError, match="expected integer"):
            validate("nope", {"type": "integer"})

    def test_bool_is_not_a_json_number(self):
        with pytest.raises(SchemaError):
            validate(True, {"type": "number"})

    def test_required_and_additional(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": False,
        }
        validate({"a": 1}, schema)
        with pytest.raises(SchemaError, match="missing required"):
            validate({}, schema)
        with pytest.raises(SchemaError, match="unexpected keys"):
            validate({"a": 1, "b": 2}, schema)

    def test_enum_minimum_items(self):
        with pytest.raises(SchemaError, match="not in"):
            validate("x", {"enum": ["y", "z"]})
        with pytest.raises(SchemaError, match="below minimum"):
            validate(0, {"type": "integer", "minimum": 1})
        with pytest.raises(SchemaError, match=r"\[1\]"):
            validate([1, "x"], {"type": "array", "items": {"type": "integer"}})

    def test_span_line_end_before_start(self):
        span = {
            "span_id": 1,
            "parent_id": None,
            "name": "s",
            "cat": "stage",
            "track": "t",
            "start": 2.0,
            "end": 1.0,
            "args": {},
        }
        validate(span, SPAN_SCHEMA)  # schema alone cannot express ordering
        with pytest.raises(SchemaError, match="end precedes start"):
            validate_span_line(json.dumps(span), 1)
