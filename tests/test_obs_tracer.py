"""Tracer span collection: structure, gating, lanes, caps, telemetry."""

import pytest

from repro.core.entry import EntryId
from repro.obs import STAGE_NAMES, Tracer
from repro.protocols import GeoDeployment, protocol_by_name
from repro.protocols.runtime.events import EntryReplicationStarted
from repro.topology import nationwide_cluster
from repro.workloads import make_workload


def small_deployment(seed: int = 3) -> GeoDeployment:
    return GeoDeployment(
        nationwide_cluster(nodes_per_group=4),
        protocol_by_name("massbft"),
        make_workload("ycsb-a"),
        offered_load=2_000.0,
        seed=seed,
    )


@pytest.fixture(scope="module")
def traced_run():
    deployment = small_deployment()
    tracer = Tracer.attach(deployment, telemetry_interval=0.01)
    metrics = deployment.run(duration=1.0, warmup=0.25)
    return deployment, tracer, tracer.build(), metrics


class TestGating:
    def test_untraced_deployment_has_no_hooks(self):
        deployment = small_deployment()
        assert deployment.network.transmit_hook is None
        # The replication event is only published when a subscriber asks
        # for it — the hot-path zero-allocation gate.
        assert not deployment.bus.wants(EntryReplicationStarted)

    def test_attach_installs_hooks(self):
        deployment = small_deployment()
        Tracer.attach(deployment, telemetry_interval=0.0)
        assert deployment.network.transmit_hook is not None
        assert deployment.bus.wants(EntryReplicationStarted)


class TestSpanForest:
    def test_entry_roots_cover_committed_entries(self, traced_run):
        _, _, trace, metrics = traced_run
        assert metrics.committed > 0
        assert trace.meta["entries"] == len(trace.entry_roots) > 0
        complete = [r for r in trace.entry_roots if r.args["complete"]]
        assert complete, "expected executed entries in a healthy run"

    def test_stage_children_ordered_and_contiguous(self, traced_run):
        _, _, trace, _ = traced_run
        root = next(r for r in trace.entry_roots if r.args["complete"])
        names = [c.name for c in root.children]
        assert names == list(STAGE_NAMES)
        for child in root.children:
            assert root.start <= child.start <= child.end <= root.end
        # Stage boundaries chain: each stage starts where one before ended.
        for prev, cur in zip(root.children, root.children[1:]):
            assert cur.start >= prev.start

    def test_dissemination_has_per_receiver_children(self, traced_run):
        deployment, _, trace, _ = traced_run
        root = next(r for r in trace.entry_roots if r.args["complete"])
        diss = root.find("dissemination")
        assert diss is not None
        receivers = {c.name for c in diss.children}
        gid = root.args["gid"]
        expected = {
            f"replicate->g{g}"
            for g in range(deployment.n_groups)
            if g != gid
        }
        assert receivers == expected
        critical = [c for c in diss.children if c.args.get("critical")]
        assert len(critical) == 1
        assert critical[0].end == max(c.end for c in diss.children)

    def test_root_for_lookup(self, traced_run):
        _, _, trace, _ = traced_run
        root = trace.entry_roots[0]
        entry_id = EntryId(root.args["gid"], root.args["seq"])
        assert trace.root_for(entry_id) is root
        assert trace.root_for(EntryId(99, 12345)) is None

    def test_span_ids_unique_and_parented(self, traced_run):
        _, _, trace, _ = traced_run
        spans = trace.spans()
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id


class TestMessageSpans:
    def test_message_spans_filtered_to_wan_lanes(self, traced_run):
        _, _, trace, _ = traced_run
        assert trace.message_spans, "WAN traffic expected"
        assert {s.args["lane"] for s in trace.message_spans} <= {
            "wan_up",
            "wan_ctl",
        }

    def test_lane_filter_option(self):
        deployment = small_deployment()
        tracer = Tracer.attach(
            deployment, telemetry_interval=0.0, message_lanes=("wan_ctl",)
        )
        deployment.run(duration=0.6, warmup=0.1)
        trace = tracer.build()
        assert trace.message_spans
        assert {s.args["lane"] for s in trace.message_spans} == {"wan_ctl"}

    def test_max_message_spans_cap(self):
        deployment = small_deployment()
        tracer = Tracer.attach(
            deployment, telemetry_interval=0.0, max_message_spans=10
        )
        deployment.run(duration=0.6, warmup=0.1)
        trace = tracer.build()
        assert len(trace.message_spans) == 10
        assert tracer.dropped_message_spans > 0
        assert trace.meta["dropped_message_spans"] == tracer.dropped_message_spans


class TestTelemetry:
    def test_sampler_produces_series(self, traced_run):
        _, tracer, trace, _ = traced_run
        assert tracer.sampler.samples_taken > 0
        names = set(trace.telemetry.names())
        assert any(n.endswith(".utilization") for n in names)
        assert any(n.endswith(".backlog_s") for n in names)
        assert any(n.startswith("group/") and n.endswith("/pbft_view") for n in names)

    def test_zero_interval_disables_sampler(self):
        deployment = small_deployment()
        tracer = Tracer.attach(deployment, telemetry_interval=0.0)
        deployment.run(duration=0.4, warmup=0.1)
        assert tracer.sampler.samples_taken == 0

    def test_admission_series_recorded(self, traced_run):
        _, _, trace, _ = traced_run
        # Queue-depth samples flow from the protocol's own admission gate.
        assert any(
            n.endswith("/wan_backlog_s") for n in trace.telemetry.names()
        )
