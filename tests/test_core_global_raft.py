"""Unit tests for the global Raft message types and instance bookkeeping."""


from repro.core.global_raft import (
    FollowerSlot,
    GRAccept,
    GRCommit,
    GRPropose,
    GRTakeoverRequest,
    GRTakeoverVote,
    GRTsReplicate,
    InstanceState,
    LocalCommitNotice,
    LocalTsNotice,
    OutstandingEntry,
)


class TestMessageSizes:
    def test_propose_size_scales_with_piggyback(self):
        bare = GRPropose(
            instance=0, seq=1, digest=b"x" * 32, entry_size=1000,
            tx_count=5, cert_size=400,
        )
        loaded = GRPropose(
            instance=0, seq=1, digest=b"x" * 32, entry_size=1000,
            tx_count=5, cert_size=400,
            ts_assignments=((1, 1, 5), (2, 1, 7)),
        )
        assert loaded.size_bytes == bare.size_bytes + 24
        # The entry body does NOT travel in the propose.
        assert bare.size_bytes < 1000

    def test_accept_and_commit_are_small(self):
        accept = GRAccept(instance=0, seq=1, from_gid=1, ts=5, cert_size=400)
        commit = GRCommit(instance=0, seq=1, cert_size=400)
        assert accept.size_bytes < 1000
        assert commit.size_bytes < 1000

    def test_ts_replicate_scales_with_assignments(self):
        small = GRTsReplicate(assigner=0, assignments=((1, 1, 5),))
        large = GRTsReplicate(
            assigner=0, assignments=tuple((1, s, s) for s in range(50))
        )
        assert large.size_bytes == small.size_bytes + 49 * 12

    def test_local_notices(self):
        notice = LocalTsNotice(assignments=((0, 1, 1, 5), (1, 1, 1, 6)))
        assert notice.size_bytes == 32 + 2 * 16
        assert LocalCommitNotice(gid=0, seq=1).size_bytes == 32

    def test_takeover_messages(self):
        req = GRTakeoverRequest(instance=0, candidate=1, term=2)
        vote = GRTakeoverVote(
            instance=0, candidate=1, term=2, voter=2, granted=True
        )
        assert req.size_bytes == 32
        assert vote.size_bytes == 32


class TestInstanceState:
    def test_slot_get_or_create(self):
        state = InstanceState(instance=0)
        slot = state.slot(5)
        assert slot.seq == 5
        assert state.slot(5) is slot
        assert not slot.propose_received

    def test_outstanding_get_or_create(self):
        state = InstanceState(instance=0)
        out = state.outstanding_entry(3)
        out.accepts.add(1)
        assert state.outstanding_entry(3).accepts == {1}

    def test_defaults(self):
        state = InstanceState(instance=2)
        assert state.committed_through == 0
        assert state.takeover_leader is None
        assert state.frozen_clock == 0
        slot = FollowerSlot(seq=1)
        assert slot.ts is None and not slot.accept_sent
        out = OutstandingEntry(seq=1)
        assert not out.committed and not out.commit_pbft_started
