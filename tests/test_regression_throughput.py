"""Throughput regression guard for the runtime refactor.

Re-runs the Fig 8 nationwide YCSB-A saturated throughput probe for
MassBFT and the Baseline with the exact benchmark configuration
(``benchmarks/_helpers``: load 30k/group, 1.6 s runs, seed 1) and checks
the result against the recorded rows in ``benchmarks/results.json``.
The recorded throughput comes from ``run_calibrated``'s saturation
probe, which is this same ``ExperimentRunner.run`` call, so the numbers
must agree to the rounding in the file — the test allows 1%.

If this fails after an intentional behaviour change, regenerate the
results file with ``pytest benchmarks/bench_fig08_nationwide.py``.
"""

import json

import pytest

from benchmarks._helpers import RESULTS_PATH, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.topology import nationwide_cluster


@pytest.fixture(scope="module")
def recorded():
    with open(RESULTS_PATH) as fh:
        rows = json.load(fh)["fig08_ycsb-a"]
    return {row[0]: row[1] for row in rows}  # protocol -> ktps


@pytest.mark.parametrize("protocol", ["massbft", "baseline"])
def test_nationwide_throughput_matches_recorded(protocol, recorded):
    runner = ExperimentRunner()
    result = runner.run(
        saturated_config(protocol, nationwide_cluster(nodes_per_group=7))
    )
    expected = recorded[protocol]
    assert result.throughput_ktps == pytest.approx(expected, rel=0.01), (
        f"{protocol}: measured {result.throughput_ktps:.4f} ktps, "
        f"recorded {expected} ktps (benchmarks/results.json fig08_ycsb-a)"
    )
