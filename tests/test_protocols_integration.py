"""Integration tests: full deployments of every protocol.

These run short simulations at modest load and check end-to-end
behaviour: transactions commit, agreement holds across observer nodes,
and each protocol's distinguishing feature is visible.
"""

import pytest

from repro.protocols import (
    GeoDeployment,
    baseline,
    br,
    ebr,
    geobft,
    iss,
    massbft,
    protocol_by_name,
    steward,
)
from repro.protocols.registry import feature_table
from repro.workloads import make_workload
from tests.conftest import tiny_cluster

ALL_SPECS = [massbft(), baseline(), geobft(), steward(), iss(), br(), ebr()]


def deploy(spec, sizes=(4, 4, 4), load=2000, observers="leaders", **kwargs):
    return GeoDeployment(
        tiny_cluster(sizes),
        spec,
        make_workload("ycsb-a"),
        offered_load=load,
        observers=observers,
        seed=11,
        **kwargs,
    )


class TestProtocolSpec:
    def test_registry_resolves_all(self):
        for name in ("massbft", "baseline", "geobft", "steward", "iss", "br", "ebr"):
            assert protocol_by_name(name).name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            protocol_by_name("pbft9000")

    def test_invalid_combinations_rejected(self):
        from repro.protocols.base import ProtocolSpec

        with pytest.raises(ValueError):
            ProtocolSpec("x", "teleport", "raft", "round")
        with pytest.raises(ValueError):
            ProtocolSpec("x", "leader", "none", "async")

    def test_feature_table_matches_paper(self):
        table = feature_table()
        assert table["MassBFT"]["coding"] == "Erasure-coded"
        assert table["Steward"]["multi_master"] == "N"
        assert table["GeoBFT"]["consensus"] == "Broadcast"
        # Table II's five systems plus the Fig 12 ablations (BR, EBR).
        assert len(table) == 7


class TestCommitsFlow:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_transactions_commit(self, spec):
        deployment = deploy(spec)
        metrics = deployment.run(duration=1.5, warmup=0.25)
        assert metrics.committed > 200, spec.name
        assert 0 < metrics.mean_latency < 1.0

    def test_multi_master_serves_all_groups(self):
        metrics = deploy(massbft()).run(duration=1.5, warmup=0.25)
        for g in range(3):
            assert metrics.committed_by_group[g] > 0

    def test_steward_is_single_master(self):
        deployment = deploy(steward())
        metrics = deployment.run(duration=1.5, warmup=0.25)
        assert metrics.committed_by_group[0] > 0
        assert metrics.committed_by_group[1] == 0
        assert metrics.committed_by_group[2] == 0

    def test_latency_breakdown_phases_present(self):
        deployment = deploy(massbft())
        metrics = deployment.run(duration=1.5, warmup=0.25)
        phases = metrics.phase_durations()
        for key in ("batching", "local_consensus", "global_replication"):
            assert key in phases and phases[key] >= 0

    def test_wan_traffic_ranking(self):
        """Encoded replication moves fewer WAN bytes per committed txn
        than leader unicast (the Fig 10 effect). At the paper's 7-node
        groups the coded overhead is 2*(7/3) ~= 4.7 entry copies versus
        2*(f+1) = 6 full copies for the Baseline. (At 4-node groups the
        two coincide — 2*(4/2) = 2*(1+1) — so n=7 is the relevant size.)"""
        per_txn = {}
        for spec in (massbft(), baseline()):
            deployment = deploy(spec, sizes=(7, 7, 7))
            metrics = deployment.run(duration=1.5, warmup=0.25)
            per_txn[spec.name] = (
                deployment.network.wan_bytes_total / metrics.committed
            )
        assert per_txn["MassBFT"] < per_txn["Baseline"]


class TestAgreement:
    @pytest.mark.parametrize(
        "spec", [massbft(), baseline(), geobft()], ids=lambda s: s.name
    )
    def test_all_observers_execute_same_order(self, spec):
        deployment = deploy(spec, observers="all", load=1500)
        orders = {}
        for node in deployment.nodes.values():
            if node.orderer is None:
                continue
            executed = []
            orders[node.addr] = executed
            original = node.orderer.on_execute

            def wrapped(eid, executed=executed, original=original):
                executed.append(eid)
                original(eid)

            node.orderer.on_execute = wrapped
        deployment.run(duration=1.5, warmup=0.0)
        sequences = list(orders.values())
        reference = max(sequences, key=len)
        assert len(reference) > 10
        for seq in sequences:
            # Prefix agreement: no observer may diverge from another.
            assert seq == reference[: len(seq)]

    def test_execution_is_deterministic_across_runs(self):
        def run_once():
            deployment = deploy(massbft(), load=1500)
            metrics = deployment.run(duration=1.0, warmup=0.0)
            return metrics.committed, round(metrics.mean_latency, 9)

        assert run_once() == run_once()


class TestWindowing:
    def test_round_window_paces_fast_group(self):
        """With round-based ordering the fast group cannot run ahead of
        execution by more than the round window."""
        deployment = deploy(baseline(), load=4000, overrides=None) if False else deploy(
            baseline(), load=4000
        )
        deployment.run(duration=1.5, warmup=0.0)
        for runtime in deployment.groups.values():
            assert (
                runtime.next_seq - runtime.last_executed_round
                <= deployment.round_window + 1
            )

    def test_iss_epoch_gating_increases_latency(self):
        lat = {}
        for spec in (baseline(), iss(epoch_slots=3)):
            metrics = deploy(spec, load=2000).run(duration=2.0, warmup=0.5)
            lat[spec.name] = metrics.mean_latency
        assert lat["ISS"] >= lat["Baseline"]

    def test_batch_respects_cap(self):
        deployment = deploy(massbft(), load=3000)
        metrics = deployment.run(duration=1.0, warmup=0.0)
        assert metrics.batch_sizes.max <= deployment.max_batch_txns


class TestExecutionModes:
    def test_full_execution_with_real_coding(self):
        """End-to-end with real payload bytes: serialize, erasure-code,
        Merkle-verify, rebuild, execute against the real store."""
        deployment = GeoDeployment(
            tiny_cluster((4, 4, 4)),
            massbft(),
            make_workload("smallbank", n_accounts=500, materialize_limit=500),
            offered_load=400,
            coding="real",
            execution="full",
            seed=13,
        )
        metrics = deployment.run(duration=1.0, warmup=0.0)
        assert metrics.committed > 50
        observer = deployment.observer_of(0)
        assert observer.pipeline.store.batches_applied > 0

    def test_abort_metrics_recorded_for_hotspots(self):
        deployment = GeoDeployment(
            tiny_cluster((4, 4, 4)),
            massbft(),
            make_workload("tpcc", n_warehouses=2),
            offered_load=3000,
            seed=14,
        )
        metrics = deployment.run(duration=1.5, warmup=0.25)
        assert metrics.abort_rate > 0.01
