"""Critical-path attribution: agreement with stamp-based accounting.

This is the regression guard behind the fig11 benchmark refactor: the
trace-derived breakdown and ``RunMetrics.phase_durations()`` consume the
same bus events, so they must agree within tolerance on any run.
"""

import pytest

from repro.obs import (
    PHASES,
    Tracer,
    analyze,
    breakdowns_agree,
    compare_breakdowns,
    entry_attribution,
    format_report,
)
from repro.obs.spans import Span

from tests.test_obs_tracer import small_deployment

WARMUP = 0.25


@pytest.fixture(scope="module")
def traced_metrics():
    deployment = small_deployment(seed=11)
    tracer = Tracer.attach(deployment, telemetry_interval=0.0)
    metrics = deployment.run(duration=1.2, warmup=WARMUP)
    return tracer.build(), metrics


class TestAgreement:
    def test_trace_breakdown_matches_stamp_breakdown(self, traced_metrics):
        trace, metrics = traced_metrics
        report = analyze(trace, warmup=WARMUP)
        stamp = metrics.phase_durations()
        comparison = compare_breakdowns(
            report.breakdown, stamp, rel_tolerance=0.05
        )
        assert comparison, "expected at least one comparable phase"
        assert breakdowns_agree(comparison), comparison

    def test_all_phases_present_on_healthy_run(self, traced_metrics):
        trace, _ = traced_metrics
        report = analyze(trace, warmup=WARMUP)
        assert tuple(report.breakdown) == PHASES
        assert all(v >= 0.0 for v in report.breakdown.values())
        assert report.entries_measured > 0
        assert report.entries_measured <= report.entries_total

    def test_warmup_filters_entries(self, traced_metrics):
        trace, _ = traced_metrics
        everything = analyze(trace, warmup=0.0)
        filtered = analyze(trace, warmup=WARMUP)
        assert filtered.entries_measured < everything.entries_measured
        # Batching is aggregated over all entries regardless of warmup,
        # mirroring the stamp-based accounting.
        assert filtered.breakdown["batching"] == pytest.approx(
            everything.breakdown["batching"]
        )

    def test_report_lists_slowest_and_critical(self, traced_metrics):
        trace, _ = traced_metrics
        report = analyze(trace, warmup=WARMUP, slowest=3)
        assert len(report.slowest) == 3
        totals = [total for _, total, _ in report.slowest]
        assert totals == sorted(totals, reverse=True)
        assert sum(report.critical_counts.values()) == report.entries_measured

    def test_format_report_cross_check(self, traced_metrics):
        trace, metrics = traced_metrics
        report = analyze(trace, warmup=WARMUP)
        text = format_report(report, metrics.phase_durations())
        assert "critical-path latency attribution" in text
        assert "verdict: AGREE" in text
        for phase in PHASES:
            assert phase in text


def _entry_root() -> Span:
    root = Span(
        1,
        "entry g0:0",
        "entry",
        0.0,
        1.0,
        "g0/entries",
        args={"batch_wait": 0.01, "complete": True, "gid": 0, "seq": 0},
    )
    root.child(2, "batching", "stage", 0.0, 0.01)
    root.child(3, "local_consensus", "stage", 0.01, 0.11)
    root.child(4, "dissemination", "stage", 0.11, 0.61)
    root.child(5, "global_consensus", "stage", 0.61, 0.81)
    root.child(6, "ordering_execution", "stage", 0.81, 1.0)
    return root


class TestEntryAttribution:
    def test_phase_values(self):
        attr = entry_attribution(_entry_root())
        assert attr == pytest.approx(
            {
                "batching": 0.01,
                "local_consensus": 0.10,
                "global_replication": 0.50,
                "global_consensus": 0.20,
                "ordering_execution": 0.19,
            }
        )

    def test_replication_measured_from_local_end(self):
        # Even if the dissemination span starts after local consensus
        # ended (send was deferred), replication is boundary-to-boundary.
        root = Span(1, "entry g0:1", "entry", 0.0, 1.0, "t", args={})
        root.child(2, "local_consensus", "stage", 0.0, 0.1)
        root.child(3, "dissemination", "stage", 0.3, 0.6)
        attr = entry_attribution(root)
        assert attr["global_replication"] == pytest.approx(0.5)

    def test_partial_lifecycle(self):
        root = Span(1, "entry g0:2", "entry", 0.0, 0.2, "t", args={})
        root.child(2, "local_consensus", "stage", 0.0, 0.2)
        attr = entry_attribution(root)
        assert set(attr) == {"local_consensus"}


class TestCompare:
    def test_tolerance_boundaries(self):
        trace_bd = {"local_consensus": 0.104}
        stamp_bd = {"local_consensus": 0.100}
        assert breakdowns_agree(compare_breakdowns(trace_bd, stamp_bd))
        trace_bd = {"local_consensus": 0.120}
        comparison = compare_breakdowns(trace_bd, stamp_bd)
        assert not breakdowns_agree(comparison)
        assert comparison["local_consensus"]["rel_err"] == pytest.approx(0.2)

    def test_absolute_floor_for_tiny_phases(self):
        # Sub-0.1ms phases agree via the absolute floor even at large
        # relative error.
        comparison = compare_breakdowns(
            {"ordering_execution": 5e-5}, {"ordering_execution": 1e-5}
        )
        assert breakdowns_agree(comparison)

    def test_missing_side_counts_as_zero(self):
        comparison = compare_breakdowns({"global_consensus": 0.2}, {})
        assert not breakdowns_agree(comparison)
