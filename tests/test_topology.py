"""Tests for cluster configuration and the paper's environment presets."""

import pytest

from repro.topology.cluster import ClusterConfig, GroupConfig
from repro.topology.presets import (
    NATIONWIDE_RTT,
    WORLDWIDE_RTT,
    nationwide_cluster,
    scaled_cluster,
    worldwide_cluster,
)


class TestGroupConfig:
    def test_fault_bound(self):
        assert GroupConfig(0, 4).f == 1
        assert GroupConfig(0, 7).f == 2
        assert GroupConfig(0, 40).f == 13

    def test_bandwidth_resolution(self):
        g = GroupConfig(0, 4, wan_bandwidth=40e6, node_bandwidth={2: 20e6})
        assert g.bandwidth_of(0, default=10e6) == 40e6
        assert g.bandwidth_of(2, default=10e6) == 20e6
        g2 = GroupConfig(0, 4)
        assert g2.bandwidth_of(0, default=10e6) == 10e6

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            GroupConfig(0, 0)


class TestClusterConfig:
    def test_group_ids_must_be_dense(self):
        with pytest.raises(ValueError):
            ClusterConfig(
                groups=[GroupConfig(1, 4)], rtt_matrix={}
            )

    def test_missing_rtt_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(
                groups=[GroupConfig(0, 4), GroupConfig(1, 4)], rtt_matrix={}
            )

    def test_derived_quantities(self):
        cluster = nationwide_cluster(7)
        assert cluster.n_groups == 3
        assert cluster.f_g == 1
        assert cluster.total_nodes == 21
        assert "nationwide" in cluster.describe()


class TestPresets:
    def test_nationwide_rtts_in_paper_range(self):
        for rtt in NATIONWIDE_RTT.values():
            assert 0.0267 <= rtt <= 0.0434

    def test_worldwide_rtts_in_paper_range(self):
        for rtt in WORLDWIDE_RTT.values():
            assert 0.145 <= rtt <= 0.206

    def test_default_bandwidth_is_20mbps(self):
        assert nationwide_cluster().wan_bandwidth == 20e6
        assert worldwide_cluster().wan_bandwidth == 20e6

    def test_heterogeneous_sizes(self):
        cluster = nationwide_cluster(group_sizes=[4, 7, 7])
        assert [g.n_nodes for g in cluster.groups] == [4, 7, 7]

    def test_nationwide_requires_three_groups(self):
        with pytest.raises(ValueError):
            nationwide_cluster(group_sizes=[7, 7])

    def test_scaled_cluster_rtts_complete(self):
        for n in range(3, 8):
            cluster = scaled_cluster(n)
            assert cluster.n_groups == n
            for i in range(n):
                for j in range(i + 1, n):
                    assert 0.0267 <= cluster.rtt_matrix[(i, j)] <= 0.0434

    def test_scaled_cluster_bounds(self):
        with pytest.raises(ValueError):
            scaled_cluster(8)
        with pytest.raises(ValueError):
            scaled_cluster(1)
