"""Tests for Algorithm 1: transfer-plan generation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transfer_plan import faulty_bound, generate_transfer_plan

group_size = st.integers(min_value=1, max_value=40)


class TestPaperCaseStudy:
    """Figure 5b: a 4-node group sends to a 7-node group."""

    def test_case_study_numbers(self):
        plan = generate_transfer_plan(4, 7)
        assert plan.n_total == 28
        assert plan.nc1 == 7
        assert plan.nc2 == 4
        assert plan.n_parity == 1 * 7 + 2 * 4  # f1*nc1 + f2*nc2 = 15
        assert plan.n_data == 13
        assert plan.overhead == pytest.approx(28 / 13)  # ~2.15 copies

    def test_case_study_beats_full_copy(self):
        plan = generate_transfer_plan(4, 7)
        full_copy_overhead = faulty_bound(4) + faulty_bound(7) + 1  # 4 copies
        assert plan.overhead < full_copy_overhead

    def test_equal_seven_node_groups(self):
        # The paper's main deployment: 7-node groups everywhere.
        plan = generate_transfer_plan(7, 7)
        assert plan.n_total == 7
        assert plan.n_data == 3
        assert plan.overhead == pytest.approx(7 / 3)


class TestPlanStructure:
    def test_every_chunk_sent_and_received_exactly_once(self):
        plan = generate_transfer_plan(4, 6)
        chunks = [a.chunk for a in plan.assignments]
        assert sorted(chunks) == list(range(plan.n_total))

    def test_balanced_send_and_receive_load(self):
        plan = generate_transfer_plan(5, 3)
        for sender in range(5):
            assert len(plan.chunks_sent_by(sender)) == plan.nc1
        for receiver in range(3):
            assert len(plan.chunks_received_by(receiver)) == plan.nc2

    def test_sender_and_receiver_views_consistent(self):
        plan = generate_transfer_plan(4, 7)
        from_senders = {
            (a.chunk, a.sender, a.receiver)
            for s in range(4)
            for a in plan.chunks_sent_by(s)
        }
        from_receivers = {
            (a.chunk, a.sender, a.receiver)
            for r in range(7)
            for a in plan.chunks_received_by(r)
        }
        assert from_senders == from_receivers

    def test_out_of_range_nodes(self):
        plan = generate_transfer_plan(4, 7)
        with pytest.raises(IndexError):
            plan.chunks_sent_by(4)
        with pytest.raises(IndexError):
            plan.chunks_received_by(-1)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generate_transfer_plan(0, 4)
        with pytest.raises(ValueError):
            generate_transfer_plan(4, -1)

    def test_faulty_bound(self):
        assert faulty_bound(1) == 0
        assert faulty_bound(4) == 1
        assert faulty_bound(7) == 2
        assert faulty_bound(40) == 13


class TestWorstCaseSurvival:
    """The parity budget covers the paper's worst case: f1 faulty senders
    and f2 faulty receivers with disjoint chunk sets."""

    @given(n1=group_size, n2=group_size)
    @settings(max_examples=120, deadline=None)
    def test_property_worst_case_still_rebuildable(self, n1, n2):
        plan = generate_transfer_plan(n1, n2)
        f1, f2 = faulty_bound(n1), faulty_bound(n2)
        # Adversary choice maximizing loss: distinct senders/receivers.
        faulty_senders = set(range(f1))
        # Pick receivers whose chunks don't overlap the faulty senders'
        # when possible (the worst case the parity budget is sized for).
        lost_by_senders = {
            a.chunk for a in plan.assignments if a.sender in faulty_senders
        }
        receivers_by_damage = sorted(
            range(n2),
            key=lambda r: len(
                {a.chunk for a in plan.chunks_received_by(r)} - lost_by_senders
            ),
            reverse=True,
        )
        faulty_receivers = set(receivers_by_damage[:f2])
        surviving = plan.surviving_chunks(faulty_senders, faulty_receivers)
        assert len(surviving) >= plan.n_data

    @given(n1=group_size, n2=group_size)
    @settings(max_examples=120, deadline=None)
    def test_property_structure_invariants(self, n1, n2):
        plan = generate_transfer_plan(n1, n2)
        assert plan.n_total == math.lcm(n1, n2)
        assert plan.nc1 * n1 == plan.n_total
        assert plan.nc2 * n2 == plan.n_total
        assert plan.n_data + plan.n_parity == plan.n_total
        assert plan.n_data >= 1
        # Algorithm 1's receiver rule: j = floor(c / nc2).
        for a in plan.assignments:
            assert a.receiver == a.chunk // plan.nc2
            assert a.sender == a.chunk // plan.nc1
