"""Tests for the standalone Raft and Paxos substrates."""

import pytest

from repro.consensus.paxos import MultiPaxos
from repro.consensus.raft import RaftConfig, RaftNode
from repro.sim.core import Simulator
from repro.sim.network import Network, NodeAddress
from repro.sim.node import SimNode


class RaftHarness:
    def __init__(self, n=5):
        self.sim = Simulator()
        self.net = Network(self.sim, rtt_matrix={})
        members = tuple(NodeAddress(0, i) for i in range(n))
        self.nodes = [SimNode(self.sim, self.net, a) for a in members]
        self.applied = {a: [] for a in members}
        config = RaftConfig(members=members)
        self.rafts = [
            RaftNode(
                node,
                config,
                on_apply=lambda i, c, a=node.addr: self.applied[a].append(c),
            )
            for node in self.nodes
        ]

    def elect(self):
        self.sim.run(until=1.0)
        leaders = [r for r in self.rafts if r.is_leader and not r.node.crashed]
        assert len(leaders) == 1
        return leaders[0]

    def live_logs(self):
        return [
            self.applied[r.node.addr]
            for r in self.rafts
            if not r.node.crashed
        ]


class TestRaftElections:
    def test_exactly_one_leader_emerges(self):
        h = RaftHarness()
        h.elect()

    def test_terms_are_positive_after_election(self):
        h = RaftHarness()
        leader = h.elect()
        assert leader.current_term >= 1

    def test_followers_learn_leader_hint(self):
        h = RaftHarness()
        leader = h.elect()
        h.sim.run(until=1.5)
        for r in h.rafts:
            if r is not leader:
                assert r.leader_hint == leader.node.addr

    def test_new_leader_after_crash(self):
        h = RaftHarness()
        first = h.elect()
        first.node.crash()
        h.sim.run(until=3.0)
        second = next(
            r for r in h.rafts if r.is_leader and not r.node.crashed
        )
        assert second is not first
        assert second.current_term > first.current_term


class TestRaftReplication:
    def test_commands_apply_in_order_everywhere(self):
        h = RaftHarness()
        leader = h.elect()
        for i in range(20):
            leader.propose(f"cmd{i}")
        h.sim.run(until=3.0)
        for log in h.live_logs():
            assert log == [f"cmd{i}" for i in range(20)]

    def test_non_leader_propose_rejected(self):
        h = RaftHarness()
        leader = h.elect()
        follower = next(r for r in h.rafts if r is not leader)
        assert follower.propose("x") is False

    def test_majority_sufficient(self):
        h = RaftHarness(n=5)
        leader = h.elect()
        followers = [r for r in h.rafts if r is not leader]
        followers[0].node.crash()
        followers[1].node.crash()
        leader.propose("with-two-down")
        h.sim.run(until=3.0)
        for log in h.live_logs():
            assert log == ["with-two-down"]

    def test_no_commit_without_majority(self):
        h = RaftHarness(n=5)
        leader = h.elect()
        followers = [r for r in h.rafts if r is not leader]
        for f in followers[:3]:
            f.node.crash()
        leader.propose("minority")
        h.sim.run(until=2.0)
        assert h.applied[leader.node.addr] == []

    def test_failover_preserves_committed_entries(self):
        h = RaftHarness()
        leader = h.elect()
        for i in range(5):
            leader.propose(f"c{i}")
        h.sim.run(until=2.0)
        leader.node.crash()
        h.sim.run(until=4.0)
        new_leader = next(
            r for r in h.rafts if r.is_leader and not r.node.crashed
        )
        new_leader.propose("after")
        h.sim.run(until=6.0)
        for log in h.live_logs():
            assert log == ["c0", "c1", "c2", "c3", "c4", "after"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RaftConfig(members=(NodeAddress(0, 0),))
        with pytest.raises(ValueError):
            RaftConfig(
                members=(NodeAddress(0, 0), NodeAddress(0, 1)),
                election_timeout_min=0.01,
                heartbeat_interval=0.05,
            )


class PaxosHarness:
    def __init__(self, n=5):
        self.sim = Simulator()
        self.net = Network(self.sim, rtt_matrix={})
        self.nodes = [SimNode(self.sim, self.net, NodeAddress(0, i)) for i in range(n)]
        self.order = {n.addr: [] for n in self.nodes}
        self.paxos = MultiPaxos(
            self.nodes, on_apply=lambda a, i, v: self.order[a].append(v)
        )


class TestPaxos:
    def test_single_decree(self):
        h = PaxosHarness()
        h.paxos.propose(h.nodes[0].addr, 0, "value")
        h.sim.run(until=1.0)
        for log in h.order.values():
            assert log == ["value"]

    def test_slots_apply_in_order(self):
        h = PaxosHarness()
        h.paxos.propose(h.nodes[0].addr, 1, "b")  # out of order
        h.paxos.propose(h.nodes[0].addr, 0, "a")
        h.sim.run(until=1.0)
        for log in h.order.values():
            assert log == ["a", "b"]

    def test_competing_proposers_agree(self):
        h = PaxosHarness()
        h.paxos.propose(h.nodes[0].addr, 0, "from-0")
        h.paxos.propose(h.nodes[1].addr, 0, "from-1")
        h.sim.run(until=2.0)
        decided = {tuple(log) for log in h.order.values() if log}
        assert len(decided) == 1  # agreement despite the race

    def test_majority_tolerates_minority_crash(self):
        h = PaxosHarness(n=5)
        h.nodes[3].crash()
        h.nodes[4].crash()
        h.paxos.propose(h.nodes[0].addr, 0, "v")
        h.sim.run(until=1.0)
        for node in h.nodes[:3]:
            assert h.order[node.addr] == ["v"]

    def test_no_progress_without_majority(self):
        h = PaxosHarness(n=5)
        for node in h.nodes[2:]:
            node.crash()
        h.paxos.propose(h.nodes[0].addr, 0, "v")
        h.sim.run(until=1.0)
        assert h.order[h.nodes[0].addr] == []

    def test_fast_path_direct_propose(self):
        h = PaxosHarness()
        proposer = h.paxos.proposers[h.nodes[0].addr]
        proposer.propose_direct(0, "fast")
        h.sim.run(until=1.0)
        for log in h.order.values():
            assert log == ["fast"]

    def test_adopts_previously_accepted_value(self):
        # Proposer A gets slot 0 accepted by a majority; proposer B then
        # runs a higher ballot for the same slot and must adopt A's value.
        h = PaxosHarness(n=3)
        a = h.paxos.proposers[h.nodes[0].addr]
        b = h.paxos.proposers[h.nodes[1].addr]
        a.propose_direct(0, "original", round_number=0)
        h.sim.run(until=0.5)
        b.propose(0, "usurper", round_number=1)
        h.sim.run(until=1.5)
        decided = {tuple(log) for log in h.order.values() if log}
        assert decided == {("original",)}

    def test_minimum_size(self):
        sim = Simulator()
        net = Network(sim, rtt_matrix={})
        nodes = [SimNode(sim, net, NodeAddress(0, i)) for i in range(2)]
        with pytest.raises(ValueError):
            MultiPaxos(nodes, on_apply=lambda a, i, v: None)
