"""Tests for the checker's explorer: schedule generation, episode
determinism, weak-variant sensitivity, trace replay, and shrinking."""

import json

import pytest

from repro.check import (
    CheckConfig,
    FaultOp,
    FaultSchedule,
    ScenarioConfig,
    generate_schedule,
    replay_trace,
    run_episode,
    shrink_schedule,
)
from repro.check.explorer import SCENARIO_STREAM, _record_trace, explore
from repro.cli import main
from repro.sim.rng import RngRegistry
from repro.topology import scaled_cluster

#: Fast episode config for the tests: short run, light load, a crash
#: early enough that commit_slack leaves room for takeover.
FAST = CheckConfig(duration=3.0, offered_load=500.0, commit_slack=1.5)

#: Crashing a whole group is the schedule the weak quorum cannot survive:
#: with ``unsafe_commit_quorum=1`` a group commits entries before any
#: peer holds them, so its crash erases committed history.
CRASH = FaultSchedule((FaultOp(kind="crash_group", at=1.2, gid=1),))


def _gen(seed, config=None, cluster=None):
    rng = RngRegistry(seed).stream(SCENARIO_STREAM)
    return generate_schedule(
        rng,
        cluster or scaled_cluster(n_groups=3, nodes_per_group=4),
        config or ScenarioConfig(),
    )


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        assert _gen(7) == _gen(7)
        assert _gen(7) != _gen(8)

    def test_schedules_respect_fault_budgets(self):
        cluster = scaled_cluster(n_groups=3, nodes_per_group=4)
        config = ScenarioConfig(min_ops=3, max_ops=5)
        for seed in range(30):
            schedule = _gen(seed, config, cluster)
            crashed_groups = set()
            victims = {g.gid: set() for g in cluster.groups}
            for op in schedule.ops:
                if op.kind == "crash_group":
                    crashed_groups.add(op.gid)
                elif op.kind in ("crash_node", "byzantine"):
                    assert op.index != 0  # never the rep/observer
                    victims[op.gid].add(op.index)
                elif op.kind == "partition":
                    assert op.until - op.at <= config.max_partition + 1e-9
            assert len(crashed_groups) <= cluster.f_g
            for v in victims.values():
                assert len(v) <= (4 - 1) // 3

    def test_ops_sorted_by_time(self):
        for seed in range(10):
            times = [op.at for op in _gen(seed).ops]
            assert times == sorted(times)

    def test_jsonable_roundtrip(self):
        schedule = _gen(3)
        encoded = json.dumps(schedule.to_jsonable())
        assert FaultSchedule.from_jsonable(json.loads(encoded)) == schedule
        config = ScenarioConfig(max_ops=2)
        assert ScenarioConfig.from_jsonable(config.to_jsonable()) == config

    def test_without_drops_one_op(self):
        schedule = FaultSchedule(
            (
                FaultOp(kind="crash_group", at=1.0, gid=0),
                FaultOp(kind="partition", at=1.5, gid=1, until=1.7),
            )
        )
        shrunk = schedule.without(0)
        assert len(shrunk) == 1 and shrunk.ops[0].kind == "partition"


class TestEpisodeDeterminism:
    def test_same_inputs_same_outcome(self):
        a = run_episode("massbft-weak", 1, FAST, schedule=CRASH)
        b = run_episode("massbft-weak", 1, FAST, schedule=CRASH)
        assert a.violation_keys() == b.violation_keys()
        assert (a.committed, a.executed) == (b.committed, b.executed)


class TestWeakQuorumSensitivity:
    """The checker must catch the planted bug — and only there."""

    @pytest.fixture(scope="class")
    def weak_result(self):
        return run_episode("massbft-weak", 1, FAST, schedule=CRASH)

    def test_weak_variant_loses_committed_entries(self, weak_result):
        assert any(
            v.invariant == "committed-entry-lost"
            for v in weak_result.violations
        )

    def test_stock_variant_survives_same_schedule(self):
        result = run_episode("massbft", 1, FAST, schedule=CRASH)
        assert result.violations == []
        assert result.committed > 0

    def test_shrink_drops_superfluous_ops(self, weak_result):
        padded = FaultSchedule(
            CRASH.ops
            + (
                FaultOp(kind="slow_node", at=0.6, gid=0, index=2,
                        bandwidth=8e6),
                FaultOp(kind="slow_node", at=0.8, gid=2, index=1,
                        bandwidth=6e6),
            )
        )
        result = run_episode("massbft-weak", 1, FAST, schedule=padded)
        assert result.violations
        shrunk = shrink_schedule(
            "massbft-weak", 1, padded, FAST,
            target_invariants={"committed-entry-lost"},
        )
        assert len(shrunk) < len(padded)
        assert all(op.kind == "crash_group" for op in shrunk.ops)

    def test_trace_records_and_replays_identically(
        self, weak_result, tmp_path
    ):
        path = _record_trace(weak_result, FAST, tmp_path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro.check/1"
        assert header["violations"]
        reproduced, fresh = replay_trace(path)
        assert reproduced
        assert fresh.violation_keys() == weak_result.violation_keys()


class TestExploreSweep:
    def test_small_clean_sweep(self, tmp_path):
        results = explore(
            ["massbft"],
            episodes=2,
            base_seed=3,
            config=FAST,
            trace_dir=tmp_path,
            shrink=False,
        )
        assert len(results) == 2
        assert all(r.ok for r in results)
        assert not list(tmp_path.iterdir())  # no traces for clean runs


class TestCheckCli:
    def test_check_exit_codes(self, tmp_path, capsys):
        args = [
            "check",
            "--episodes", "1",
            "--seed", "3",
            "--duration", "1.5",
            "--load", "400",
            "--trace-dir", str(tmp_path),
            "--no-shrink",
        ]
        assert main(args + ["--protocols", "massbft"]) == 0
        # Same clean sweep fails the sensitivity (expect-violation) mode.
        assert main(
            args + ["--protocols", "massbft", "--expect-violation"]
        ) == 1
        capsys.readouterr()
