"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestPlanCommand:
    def test_prints_paper_case_study(self, capsys):
        assert main(["plan", "4", "7"]) == 0
        out = capsys.readouterr().out
        assert "28" in out  # n_total
        assert "2.154" in out  # overhead 28/13

    def test_assignments_listing(self, capsys):
        main(["plan", "4", "7", "--assignments"])
        out = capsys.readouterr().out
        assert "N1.0" in out and "N2.6" in out
        # 28 assignment rows plus headers.
        assert out.count("N1.") >= 28

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            main(["plan", "0", "7"])


class TestRunCommand:
    def test_small_run(self, capsys):
        code = main(
            [
                "run",
                "--protocol", "geobft",
                "--nodes", "4",
                "--load", "1500",
                "--duration", "1.0",
                "--warmup", "0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "ktps" in out

    def test_breakdown_flag(self, capsys):
        main(
            [
                "run",
                "--protocol", "massbft",
                "--nodes", "4",
                "--load", "1500",
                "--duration", "1.0",
                "--warmup", "0.25",
                "--breakdown",
            ]
        )
        out = capsys.readouterr().out
        assert "global_replication" in out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "warp-speed"])


class TestCompareCommand:
    def test_two_protocols(self, capsys):
        code = main(
            [
                "compare",
                "--protocols", "geobft,steward",
                "--nodes", "4",
                "--load", "1500",
                "--duration", "1.0",
                "--warmup", "0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "geobft" in out and "steward" in out


class TestTraceCommand:
    def test_smoke_trace_writes_validated_bundle(self, capsys, tmp_path):
        code = main(
            [
                "trace",
                "--preset", "smoke",
                "--out", str(tmp_path),
                "--validate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "critical-path latency attribution" in out
        assert "verdict: AGREE" in out
        assert "schema validation ok" in out
        for name in ("trace.json", "spans.jsonl", "telemetry.json", "report.txt"):
            assert (tmp_path / name).exists(), name

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.protocol == "massbft"
        assert args.preset == "nationwide-ycsb-a"
        assert args.telemetry_interval == 0.005

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--preset", "lunar"])


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "massbft"
        assert args.workload == "ycsb-a"
        assert args.cluster == "nationwide"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestLanedKernelCli:
    def test_run_with_laned_kernel(self, capsys, tmp_path):
        out_path = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "--protocol", "massbft",
                "--nodes", "4",
                "--load", "1500",
                "--duration", "1.0",
                "--warmup", "0.25",
                "--kernel", "laned",
                "--workers", "2",
                "--metrics-out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lanes" in out
        doc = json.loads(out_path.read_text())
        assert doc["committed"] > 0
        assert doc["events"] > 0
        assert "throughput_tps" in doc["summary"]
        # The metrics document must be kernel-agnostic: it is what the CI
        # scale-smoke job byte-diffs between classic and laned runs.
        assert "kernel" not in doc
        assert "workers" not in doc

    def test_kernel_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.kernel == "classic"
        assert args.lanes is None
        assert args.workers == 1

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--kernel", "quantum"])


class TestScaleCommand:
    def test_point_classic_vs_laned_byte_identical(self, capsys, tmp_path):
        paths = {}
        for kernel in ("classic", "laned"):
            out = tmp_path / f"{kernel}.json"
            code = main(
                [
                    "scale",
                    "--groups", "4",
                    "--nodes", "4",
                    "--duration", "0.2",
                    "--kernel", kernel,
                    "--lanes", "2",
                    "--out", str(out),
                ]
            )
            assert code == 0
            paths[kernel] = out
        classic = paths["classic"].read_bytes()
        laned = paths["laned"].read_bytes()
        assert classic == laned
        doc = json.loads(classic)
        assert doc["schema"] == "repro-scale/1"
        assert doc["events"] > 0
        assert doc["merged_digest"]

    def test_scale_defaults(self):
        args = build_parser().parse_args(["scale"])
        assert args.groups == 8
        assert args.nodes == 7
        assert args.kernel == "classic"
        assert args.lanes == 1
        assert not args.sweep
