"""Integration tests: traffic scenarios end to end on deployments.

Covers the acceptance properties of the traffic subsystem: artifact
determinism across kernels and repeat runs, offered/admitted/committed
accounting through the metrics pipeline, per-tenant SLO rows, and the
checker's saturation regime.
"""

import json

import pytest

from repro.check.explorer import CheckConfig, run_episode
from repro.check.scenarios import make_traffic
from repro.cli import main
from repro.protocols import GeoDeployment, protocol_by_name
from repro.topology import scaled_cluster
from repro.traffic import TrafficSpec, gold_silver_bronze
from repro.traffic.scenarios import SCENARIOS, ScenarioRun
from repro.traffic.suite import run_one, write_artifact
from repro.workloads import make_workload


def tiny_run(**overrides):
    """A sub-second flash crowd kept small enough for unit-test budgets."""
    defaults = dict(
        label="tiny",
        traffic=TrafficSpec.flash_crowd(
            600.0, 2400.0, start=0.3, duration=0.3, n_groups=3, ramp=0.05
        ),
        provisioned=600.0,
        duration=0.8,
        warmup=0.2,
    )
    defaults.update(overrides)
    return ScenarioRun(**defaults)


class TestSuiteDeterminism:
    def test_classic_and_laned_artifacts_are_identical(self):
        run = tiny_run()
        classic = run_one(run, seed=3, kernel="classic")
        laned = run_one(run, seed=3, kernel="laned", workers=2)
        assert classic == laned

    def test_repeat_runs_are_identical(self):
        assert run_one(tiny_run(), seed=5) == run_one(tiny_run(), seed=5)

    def test_seed_changes_the_run(self):
        a = run_one(tiny_run(), seed=1)
        b = run_one(tiny_run(), seed=2)
        assert a["accounting"] != b["accounting"] or a["metrics"] != b["metrics"]

    def test_artifact_is_deterministic_json(self, tmp_path):
        record = run_one(tiny_run(), seed=0)
        doc = {"scenario": "tiny-check", "runs": [record]}
        path_a = write_artifact(doc, tmp_path / "a")
        path_b = write_artifact(doc, tmp_path / "b")
        assert path_a.read_bytes() == path_b.read_bytes()
        assert path_a.name == "traffic_tiny_check.json"
        json.loads(path_a.read_text())  # valid JSON


class TestAccounting:
    def test_overload_sheds_and_accounts(self):
        record = run_one(tiny_run(), seed=0)
        acct = record["accounting"]
        assert acct["offered"] > 0
        assert acct["offered"] >= acct["admitted"]
        # The 4x spike over a provisioned base must shed.
        assert acct["dropped"] > 0
        assert record["goodput_tps"] > 0

    def test_constant_traffic_matches_legacy_deployment(self):
        """TrafficSpec.constant must reproduce a traffic-less deployment
        bit-for-bit (same seed, same summary)."""

        def summarize(traffic):
            deployment = GeoDeployment(
                scaled_cluster(n_groups=3, nodes_per_group=4),
                protocol_by_name("massbft"),
                make_workload("ycsb-a"),
                offered_load={g: 900.0 for g in range(3)},
                seed=9,
                traffic=traffic,
            )
            metrics = deployment.run(duration=0.9, warmup=0.2)
            return json.dumps(metrics.summary(), sort_keys=True)

        legacy = summarize(None)
        spelled_out = summarize(TrafficSpec.constant(900.0, n_groups=3))
        assert legacy == spelled_out

    def test_tenant_rows_cover_the_mix(self):
        record = run_one(
            tiny_run(
                traffic=TrafficSpec.mmpp(
                    ((2400.0, 0.15), (400.0, 0.3)),
                    n_groups=3,
                    tenants=gold_silver_bronze(),
                ),
                provisioned=900.0,
            ),
            seed=0,
        )
        rows = record["tenants"]
        assert [r["tenant"] for r in rows] == ["gold", "silver", "bronze"]
        for row in rows:
            assert row["offered"] > 0
            assert {"p50_latency_s", "p99_latency_s", "p999_latency_s"} <= set(row)
            assert row["slo_p99_s"] > 0
        total_offered = sum(r["offered"] for r in rows)
        assert total_offered == record["accounting"]["offered"]

    def test_summary_has_unified_drop_ledger(self):
        record = run_one(tiny_run(), seed=0)
        acct = record["accounting"]
        # offered >= admitted >= nothing negative; dropped is the same
        # ledger RunMetrics.dropped_txns feeds.
        assert acct["admitted"] + acct["dropped"] <= acct["offered"]


class TestScenarioCatalog:
    def test_catalog_names(self):
        assert set(SCENARIOS) == {
            "steady",
            "diurnal",
            "flash-crowd",
            "hotspot-drift",
            "multi-tenant",
            "overload",
        }

    def test_quick_runs_are_shorter(self):
        for scenario in SCENARIOS.values():
            quick = scenario.runs(quick=True)
            full = scenario.runs(quick=False)
            assert quick and full
            assert sum(r.duration for r in quick) <= sum(r.duration for r in full)

    def test_overload_sweep_is_monotone_in_offered_rate(self):
        runs = SCENARIOS["overload"].runs(quick=False)
        peaks = [r.traffic.peak_rate(0) for r in runs]
        assert peaks == sorted(peaks)
        assert len(runs) == 5


class TestCheckerSaturation:
    def test_make_traffic_empty_is_none(self):
        assert make_traffic("", CheckConfig()) is None

    def test_make_traffic_unknown_raises(self):
        with pytest.raises(ValueError):
            make_traffic("tsunami", CheckConfig())

    def test_config_roundtrip_carries_traffic(self):
        config = CheckConfig(duration=2.0, traffic="saturation")
        clone = CheckConfig.from_jsonable(config.to_jsonable())
        assert clone == config
        assert clone.traffic == "saturation"

    def test_saturation_episode_holds_safety_under_shedding(self):
        config = CheckConfig(duration=2.0, traffic="saturation")
        result = run_episode("massbft", seed=0, config=config)
        assert result.ok, [v.invariant for v in result.violations]
        assert result.committed > 0

    def test_saturation_spec_is_an_overload(self):
        config = CheckConfig(duration=3.0, offered_load=1000.0)
        spec = make_traffic("saturation", config)
        assert spec.peak_rate(0) == pytest.approx(6000.0)
        # Quiet groups idle at the provisioned rate.
        assert spec.peak_rate(1) == pytest.approx(1000.0)


class TestTrafficCli:
    def test_list_scenarios(self, capsys):
        assert main(["traffic", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["traffic", "--scenario", "nope"]) == 2

    def test_run_prints_client_accounting(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "massbft",
                "--groups",
                "3",
                "--nodes",
                "4",
                "--load",
                "800",
                "--duration",
                "0.6",
                "--warmup",
                "0.15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clients" in out
        assert "offered" in out and "admitted" in out
