"""Tests for the benchmark harness, metrics, and report formatting."""

import pytest

from repro.bench.harness import ExperimentRunner, RunConfig
from repro.bench.metrics import RunMetrics
from repro.bench.report import format_queue_gating, format_series, format_table
from repro.core.entry import EntryId
from tests.conftest import tiny_cluster


class TestRunMetrics:
    def test_throughput_excludes_warmup(self):
        m = RunMetrics(2)
        m.warmup = 1.0
        m.record_commit(created_at=0.4, now=0.5, gid=0)  # in warmup
        for t in range(10):
            m.record_commit(created_at=1.0 + t / 10, now=1.1 + t / 10, gid=0)
        m.end_time = 2.0
        assert m.committed == 10
        assert m.throughput == pytest.approx(10.0)

    def test_latency_stats(self):
        m = RunMetrics(1)
        m.end_time = 1.0
        for latency in (0.1, 0.2, 0.3):
            m.record_commit(created_at=0.5 - latency, now=0.5, gid=0)
        assert m.mean_latency == pytest.approx(0.2)
        assert m.p50_latency == pytest.approx(0.2)

    def test_group_attribution(self):
        m = RunMetrics(3)
        m.end_time = 1.0
        m.record_commit(0.0, 0.1, gid=2)
        assert m.committed_by_group == [0, 0, 1]
        assert m.group_throughput(2) == pytest.approx(1.0)

    def test_abort_rate(self):
        m = RunMetrics(1)
        m.end_time = 1.0
        m.record_commit(0.0, 0.1, gid=0)
        m.record_aborts(3, now=0.1)
        assert m.abort_rate == pytest.approx(0.75)

    def test_phase_durations(self):
        m = RunMetrics(1)
        m.end_time = 1.0
        eid = EntryId(0, 1)
        m.stamp(eid, "batched", 0.10)
        m.stamp(eid, "local_committed", 0.12)
        m.stamp(eid, "available_remote", 0.15)
        m.stamp(eid, "available_remote", 0.14)  # keeps the max
        m.stamp(eid, "global_committed", 0.17)
        m.stamp(eid, "executed", 0.20)
        m.record_batch(10, 0.01)
        phases = m.phase_durations()
        assert phases["local_consensus"] == pytest.approx(0.02)
        assert phases["global_replication"] == pytest.approx(0.03)
        assert phases["global_consensus"] == pytest.approx(0.02)
        assert phases["ordering_execution"] == pytest.approx(0.03)
        assert phases["batching"] == pytest.approx(0.01)

    def test_unknown_phase_rejected(self):
        m = RunMetrics(1)
        with pytest.raises(ValueError):
            m.stamp(EntryId(0, 1), "teleported", 0.1)

    def test_unfinalized_run_raises(self):
        m = RunMetrics(1)
        with pytest.raises(RuntimeError):
            m.measured_duration()

    def test_queue_summary(self):
        m = RunMetrics(2)
        m.warmup = 1.0
        m.record_queue_sample(0, now=0.5, wan_backlog=9.0, cpu_backlog=9.0)
        m.record_queue_sample(0, now=1.5, wan_backlog=0.2, cpu_backlog=0.1)
        m.record_queue_sample(0, now=2.0, wan_backlog=0.4, cpu_backlog=0.3)
        m.record_gated(0, "wan", now=0.5)  # in warmup, dropped
        m.record_gated(0, "wan", now=1.5)
        m.record_gated(0, "cpu", now=1.6)
        rows = m.queue_summary()
        assert len(rows) == 1
        row = rows[0]
        assert row["gid"] == 0
        assert row["samples"] == 2  # warmup sample excluded
        assert row["wan_backlog_mean"] == pytest.approx(0.3)
        assert row["wan_backlog_max"] == pytest.approx(0.4)
        assert row["cpu_backlog_max"] == pytest.approx(0.3)
        assert row["gated_total"] == 2
        assert row["gated_wan"] == 1
        assert row["gated_cpu"] == 1

    def test_queue_summary_empty(self):
        assert RunMetrics(2).queue_summary() == []


class TestHarness:
    def test_run_produces_result(self):
        runner = ExperimentRunner()
        result = runner.run(
            RunConfig(
                protocol="geobft",
                cluster=tiny_cluster((4, 4, 4)),
                offered_load=1500,
                duration=1.0,
                warmup=0.25,
                seed=31,
            )
        )
        assert result.throughput_tps > 0
        assert result.committed > 0
        assert result.config.protocol == "geobft"
        assert len(result.group_throughput) == 3
        assert runner.results == [result]

    def test_row_format(self):
        runner = ExperimentRunner()
        result = runner.run(
            RunConfig(
                protocol="geobft",
                cluster=tiny_cluster((4, 4, 4)),
                offered_load=1000,
                duration=0.8,
                warmup=0.2,
                seed=32,
            )
        )
        row = result.row()
        assert row[0] == "geobft"
        assert row[1] == pytest.approx(result.throughput_ktps, abs=0.01)

    def test_setup_hook_runs(self):
        called = []
        runner = ExperimentRunner()
        runner.run(
            RunConfig(
                protocol="geobft",
                cluster=tiny_cluster((4, 4, 4)),
                offered_load=500,
                duration=0.5,
                warmup=0.1,
                setup=lambda deployment: called.append(deployment.n_groups),
            )
        )
        assert called == [3]

    def test_calibrated_run(self):
        runner = ExperimentRunner()
        result = runner.run_calibrated(
            RunConfig(
                protocol="geobft",
                cluster=tiny_cluster((4, 4, 4)),
                offered_load=4000,
                duration=1.0,
                warmup=0.25,
                seed=33,
            ),
            latency_factor=0.8,
        )
        assert result.throughput_tps > 0
        assert result.mean_latency_s > 0

    def test_workload_kwargs(self):
        runner = ExperimentRunner()
        result = runner.run(
            RunConfig(
                protocol="geobft",
                cluster=tiny_cluster((4, 4, 4)),
                workload="tpcc",
                workload_kwargs={"n_warehouses": 4},
                offered_load=1000,
                duration=0.8,
                warmup=0.2,
            )
        )
        assert result.committed > 0


class TestReport:
    def test_table_alignment(self):
        out = format_table(
            ["proto", "ktps"], [["massbft", 45.7], ["baseline", 4.9]], title="Fig 8a"
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 8a"
        assert "proto" in lines[1]
        assert "massbft" in lines[3]

    def test_series(self):
        out = format_series("massbft", [4, 8], [10.0, 20.0], "nodes", "ktps")
        assert "4:10.0" in out
        assert "nodes -> ktps" in out

    def test_number_formatting(self):
        out = format_table(["v"], [[1234567.0], [0.123456], [12.34]])
        assert "1,234,567" in out
        assert "0.123" in out
        assert "12.3" in out

    def test_queue_gating_table(self):
        m = RunMetrics(2)
        m.record_queue_sample(1, now=0.5, wan_backlog=0.25, cpu_backlog=0.0)
        m.record_gated(1, "wan", now=0.5)
        out = format_queue_gating(m)
        assert "admission gate" in out
        assert "g1" in out
        assert "stalls_wan" in out

    def test_queue_gating_table_empty(self):
        assert format_queue_gating(RunMetrics(2)) == ""
