"""Adverse-condition tests: lossy WAN, jitter, leader crashes mid-run.

The paper's network model is partial synchrony (Section III-A): unstable
periods are tolerated as long as a global stabilization time exists.
These tests exercise the corresponding code paths: erasure parity
absorbing chunk loss, jitter not breaking agreement, and group-leader
replacement keeping the system live.
"""


from repro.protocols import GeoDeployment, massbft
from repro.sim.network import LinkQuality
from repro.workloads import make_workload
from tests.conftest import tiny_cluster


def deploy(loss=0.0, jitter=0.0, sizes=(7, 7, 7), load=2000, **kwargs):
    deployment = GeoDeployment(
        tiny_cluster(sizes),
        massbft(),
        make_workload("ycsb-a"),
        offered_load=load,
        seed=61,
        **kwargs,
    )
    deployment.network.wan_quality = LinkQuality(
        loss_probability=loss, jitter=jitter
    )
    return deployment


class TestLossyWan:
    def test_parity_absorbs_light_chunk_loss(self):
        """With 7-node groups, 4 of 7 chunks per entry are parity: a
        fraction of a percent of WAN loss costs some chunks but entries
        still rebuild and the system keeps committing."""
        clean = deploy(loss=0.0).run(duration=1.5, warmup=0.25)
        lossy = deploy(loss=0.005).run(duration=1.5, warmup=0.25)
        assert lossy.committed > 0.75 * clean.committed

    def test_heavier_loss_degrades_but_does_not_wedge(self):
        metrics = deploy(loss=0.03).run(duration=1.5, warmup=0.25)
        assert metrics.committed > 100  # alive, if slower

    def test_jitter_preserves_agreement(self):
        deployment = deploy(jitter=0.005, observers="all", load=1500)
        orders = {}
        for node in deployment.nodes.values():
            if node.orderer is None:
                continue
            executed = []
            orders[node.addr] = executed
            original = node.orderer.on_execute

            def wrapped(eid, executed=executed, original=original):
                executed.append(eid)
                original(eid)

            node.orderer.on_execute = wrapped
        deployment.run(duration=1.5, warmup=0.0)
        sequences = list(orders.values())
        reference = max(sequences, key=len)
        assert len(reference) > 10
        for seq in sequences:
            assert seq == reference[: len(seq)]


class TestLeaderCrashWithinGroup:
    def test_follower_group_leader_crash_keeps_system_live(self):
        """Crashing a *follower* group's representative mid-run: the
        local PBFT rotates leadership, global messages re-route to the
        new representative, and the other groups keep committing."""
        deployment = deploy(sizes=(4, 4, 4), load=1500)

        def crash_rep_of_group_1():
            deployment.groups[1].members[0].crash()
            deployment.groups[1].pbft.rotate_leader()

        deployment.sim.schedule_at(0.75, crash_rep_of_group_1)
        metrics = deployment.run(duration=2.5, warmup=0.0)
        # Groups 0 and 2 keep committing after the crash.
        second_half = [
            v
            for t, v in metrics.throughput_timeline.points
            if t > 1.25
        ]
        assert sum(second_half) > 500
        # The new representative is member 1.
        assert deployment.groups[1].rep.index == 1

    def test_rotation_skips_crashed_members(self):
        deployment = deploy(sizes=(4, 4, 4))
        group = deployment.groups[0]
        group.members[0].crash()
        group.members[1].crash()
        group.pbft.rotate_leader()
        assert group.rep.index == 2
