"""Tests for the protocol registry and the ``protocols.base`` compat shim."""

import dataclasses

import pytest

from repro.protocols import registry
from repro.protocols.registry import (
    feature_table,
    protocol_by_name,
    spec_with_overrides,
)
from repro.protocols.runtime import RaftGlobalPhase, StageOverrides


class TestProtocolByName:
    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            protocol_by_name("hotstuff")
        with pytest.raises(ValueError, match="massbft"):
            protocol_by_name("")

    def test_case_insensitive(self):
        assert protocol_by_name("MassBFT") == protocol_by_name("massbft")

    def test_ebr_plus_a_aliases_massbft(self):
        assert protocol_by_name("ebr+a").name == "MassBFT"

    def test_field_overrides(self):
        spec = protocol_by_name("massbft", ordering="round", overlap_vts=False)
        assert spec.ordering == "round"
        assert not spec.overlap_vts

    def test_stage_override_lands_in_stage_overrides(self):
        class MyPhase(RaftGlobalPhase):
            pass

        spec = protocol_by_name("massbft", global_phase=MyPhase)
        assert isinstance(spec.stages, StageOverrides)
        assert spec.stages.global_phase is MyPhase
        assert spec.stages.transport is None
        # Stage factories don't participate in spec equality.
        assert spec == protocol_by_name("massbft")

    def test_spec_with_overrides_mixes_fields_and_stages(self):
        spec = spec_with_overrides(
            protocol_by_name("baseline"), ordering="async", orderer=object
        )
        assert spec.ordering == "async"
        assert spec.stages.orderer is object


class TestFeatureTable:
    def test_rows_match_registered_specs(self):
        table = feature_table()
        specs = {
            name: registry._FACTORIES[name.lower()]() for name in table
        }
        for name, row in table.items():
            spec = specs[name]
            assert row["multi_master"] == ("Y" if spec.multi_master else "N")
            assert row["coding"] == (
                "Erasure-coded" if spec.transport == "encoded" else "Entire block"
            )
            expected_consensus = {
                "none": "Broadcast",
                "serial": "Raft",
                "raft": "Raft+Epoch" if spec.epoch_slots else "Raft",
            }[spec.global_consensus]
            assert row["consensus"] == expected_consensus

    def test_every_named_factory_has_a_row(self):
        table = feature_table()
        for name in ("massbft", "baseline", "geobft", "steward", "iss", "br", "ebr"):
            assert protocol_by_name(name).name in table


class TestBaseCompatShim:
    def test_shim_reexports_public_api(self):
        from repro.protocols import base

        for name in ("ProtocolSpec", "GeoDeployment", "GeoNode", "GroupRuntime"):
            assert hasattr(base, name), name
            assert name in base.__all__

    def test_shim_classes_are_the_runtime_classes(self):
        from repro.protocols import base, runtime

        assert base.GeoDeployment is runtime.GeoDeployment
        assert base.ProtocolSpec is runtime.ProtocolSpec
        assert base.ClientLoad is runtime.ClientLoad
        assert base._SequenceOrderer is runtime.SequenceOrderer

    def test_spec_is_frozen_with_stage_slot(self):
        spec = protocol_by_name("massbft")
        assert spec.stages is None
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "x"
