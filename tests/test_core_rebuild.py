"""Tests for the optimistic entry rebuild (Section IV-C)."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rebuild import OptimisticRebuilder
from repro.crypto.merkle import MerkleTree
from repro.erasure.reed_solomon import ReedSolomonCodec


def make_encoding(payload: bytes, n_data=3, n_parity=4):
    codec = ReedSolomonCodec(n_data, n_parity)
    chunks = codec.encode(payload)
    tree = MerkleTree(chunks)
    return codec, chunks, tree


class TestHappyPath:
    def test_rebuild_from_first_n_data(self):
        payload = os.urandom(400)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        for cid in range(2):
            result = rebuilder.add_chunk(tree.root, cid, chunks[cid], tree.proof(cid))
            assert result.status == "pending"
        result = rebuilder.add_chunk(tree.root, 2, chunks[2], tree.proof(2))
        assert result.ok and result.payload == payload
        assert rebuilder.complete

    def test_rebuild_from_parity_chunks(self):
        payload = os.urandom(100)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        for cid in (4, 5, 6):
            result = rebuilder.add_chunk(tree.root, cid, chunks[cid], tree.proof(cid))
        assert result.ok and result.payload == payload

    def test_duplicates_ignored(self):
        payload = os.urandom(100)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        rebuilder.add_chunk(tree.root, 0, chunks[0], tree.proof(0))
        assert rebuilder.add_chunk(tree.root, 0, chunks[0], tree.proof(0)).status == "duplicate"

    def test_chunks_after_completion_are_duplicates(self):
        payload = os.urandom(100)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        for cid in range(3):
            rebuilder.add_chunk(tree.root, cid, chunks[cid], tree.proof(cid))
        late = rebuilder.add_chunk(tree.root, 3, chunks[3], tree.proof(3))
        assert late.status == "duplicate"
        assert late.payload == payload

    def test_local_exchange_without_proof(self):
        payload = os.urandom(100)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        for cid in range(3):
            result = rebuilder.add_chunk(tree.root, cid, chunks[cid], proof=None)
        assert result.ok


class TestAdversarial:
    def test_bad_proof_rejected(self):
        payload = os.urandom(100)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        result = rebuilder.add_chunk(tree.root, 0, b"garbage", tree.proof(0))
        assert result.status == "rejected"

    def test_mismatched_proof_index_rejected(self):
        payload = os.urandom(100)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        result = rebuilder.add_chunk(tree.root, 0, chunks[1], tree.proof(1))
        assert result.status == "rejected"

    def test_fake_bucket_blacklists_its_chunk_ids(self):
        payload = os.urandom(200)
        codec, chunks, tree = make_encoding(payload)
        _, fake_chunks, fake_tree = make_encoding(b"forged" + payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        for cid in (0, 1):
            rebuilder.add_chunk(fake_tree.root, cid, fake_chunks[cid], fake_tree.proof(cid))
        result = rebuilder.add_chunk(fake_tree.root, 2, fake_chunks[2], fake_tree.proof(2))
        assert result.status == "failed"
        assert rebuilder.blacklisted_ids == {0, 1, 2}
        # Further chunks with blacklisted ids are refused (DoS guard)...
        refused = rebuilder.add_chunk(fake_tree.root, 0, fake_chunks[0], fake_tree.proof(0))
        assert refused.status == "rejected"
        # ...but other ids of the genuine encoding still complete.
        for cid in (3, 4, 5):
            result = rebuilder.add_chunk(tree.root, cid, chunks[cid], tree.proof(cid))
        assert result.ok and result.payload == payload

    def test_rebuild_attempts_bounded_by_roots(self):
        payload = os.urandom(120)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        # Two distinct fake encodings: each costs at most one rebuild.
        for marker in (b"f1", b"f2"):
            _, f_chunks, f_tree = make_encoding(marker + payload)
            ids = (3, 4, 5) if marker == b"f1" else (0, 1, 6)
            for cid in ids:
                rebuilder.add_chunk(f_tree.root, cid, f_chunks[cid], f_tree.proof(cid))
        assert rebuilder.rebuild_attempts == 2
        assert not rebuilder.complete

    def test_interleaved_genuine_and_fake(self):
        payload = os.urandom(300)
        codec, chunks, tree = make_encoding(payload)
        _, fake_chunks, fake_tree = make_encoding(b"x" + payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        rebuilder.add_chunk(tree.root, 0, chunks[0], tree.proof(0))
        rebuilder.add_chunk(fake_tree.root, 1, fake_chunks[1], fake_tree.proof(1))
        rebuilder.add_chunk(tree.root, 2, chunks[2], tree.proof(2))
        rebuilder.add_chunk(fake_tree.root, 3, fake_chunks[3], fake_tree.proof(3))
        result = rebuilder.add_chunk(tree.root, 4, chunks[4], tree.proof(4))
        assert result.ok and result.payload == payload

    def test_out_of_range_chunk_id(self):
        payload = os.urandom(50)
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        assert rebuilder.add_chunk(tree.root, 99, b"x", None).status == "rejected"

    @given(
        payload=st.binary(min_size=1, max_size=200),
        order=st.permutations(list(range(7))),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_any_arrival_order_rebuilds(self, payload, order):
        codec, chunks, tree = make_encoding(payload)
        rebuilder = OptimisticRebuilder(codec, lambda p: p == payload)
        for cid in order:
            result = rebuilder.add_chunk(tree.root, cid, chunks[cid], tree.proof(cid))
            if result.ok:
                assert result.payload == payload
                return
        pytest.fail("never rebuilt")
