"""Unit tests for deployment runtime pieces: client load, windows,
sequencers, cost model."""

import pytest

from repro.costs import CostModel
from repro.core.entry import EntryId
from repro.protocols import GeoDeployment, massbft, baseline, steward
from repro.protocols.base import ClientLoad, _SequenceOrderer
from repro.sim.rng import RngRegistry
from repro.workloads import make_workload
from tests.conftest import tiny_cluster


class TestClientLoad:
    def make(self, rate=1000.0, queue_seconds=0.05):
        return ClientLoad(
            make_workload("ycsb-a"),
            rate=rate,
            rng=RngRegistry(3).stream("load"),
            queue_seconds=queue_seconds,
        )

    def test_arrivals_match_rate(self):
        load = self.make(rate=1000.0)
        txns = load.take(now=0.05)
        # Arrivals at 0.000 .. 0.050 inclusive (51, +-1 for float steps).
        assert 50 <= len(txns) <= 51

    def test_created_at_stamps_are_exact(self):
        load = self.make(rate=100.0)
        txns = load.take(now=0.03)
        assert [round(t.created_at, 4) for t in txns] == [0.0, 0.01, 0.02, 0.03]

    def test_max_n_bounds_batch(self):
        load = self.make(rate=10_000.0)
        txns = load.take(now=0.1, max_n=25)
        assert len(txns) == 25
        # The rest remain queued for the next take.
        more = load.take(now=0.1)
        assert len(more) > 0

    def test_queue_ages_out_old_arrivals(self):
        load = self.make(rate=1000.0, queue_seconds=0.02)
        load.take(now=0.0)
        txns = load.take(now=1.0)  # 1 s gap, queue holds only 20 ms
        assert load.dropped > 900
        assert all(t.created_at >= 0.98 - 1e-9 for t in txns)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            self.make(rate=0.0)


class TestSequenceOrderer:
    def test_in_order_execution(self):
        out = []
        orderer = _SequenceOrderer(out.append)
        orderer.deliver(1, EntryId(1, 1))
        assert out == []
        orderer.deliver(0, EntryId(0, 1))
        assert out == [EntryId(0, 1), EntryId(1, 1)]

    def test_gap_blocks(self):
        out = []
        orderer = _SequenceOrderer(out.append)
        orderer.deliver(2, EntryId(0, 2))
        orderer.deliver(0, EntryId(0, 1))
        assert len(out) == 1  # slot 1 still missing


class TestCostModel:
    def test_value_verify_scales_with_tx_count(self):
        costs = CostModel()

        class Value:
            size_bytes = 1000
            tx_count = 100

        class Empty:
            size_bytes = 1000
            tx_count = 0

        assert costs.value_verify_seconds(Value()) > 50 * costs.value_verify_seconds(
            Empty()
        )

    def test_coding_costs_linear_in_bytes(self):
        costs = CostModel()
        assert costs.encode_seconds(2000) == pytest.approx(
            2 * costs.encode_seconds(1000)
        )
        assert costs.rebuild_seconds(0) == 0.0

    def test_paper_coding_cost_regime(self):
        """The paper measures ~2.3 ms for encode+rebuild of an entry;
        with default constants a ~270-txn YCSB-A entry lands there."""
        costs = CostModel()
        entry_bytes = 270 * 201
        total_ms = (
            costs.encode_seconds(entry_bytes) + costs.rebuild_seconds(entry_bytes)
        ) * 1000
        assert 0.2 < total_ms < 5.0

    def test_execute_and_certificate(self):
        costs = CostModel()
        assert costs.execute_seconds(10) == pytest.approx(10 * costs.tx_execute_seconds)
        assert costs.certificate_verify_seconds(5) == pytest.approx(
            5 * costs.sig_verify_seconds
        )


class TestProposalWindows:
    def test_backpressure_holds_proposals_when_nics_behind(self):
        deployment = GeoDeployment(
            tiny_cluster((4, 4, 4)),
            massbft(),
            make_workload("ycsb-a"),
            offered_load=2000,
            seed=41,
            wan_backlog_cap=0.05,
        )
        runtime = deployment.groups[0]
        # Artificially saturate every member's uplink.
        for node in runtime.members:
            deployment.network._wan_up[node.addr].acquire(0.0, 20e6)  # 1 s
        assert runtime._senders_backlogged()
        assert runtime.try_propose() is None

    def test_encoded_gate_ignores_minority_slow_nodes(self):
        deployment = GeoDeployment(
            tiny_cluster((7, 7, 7)),
            massbft(),
            make_workload("ycsb-a"),
            offered_load=2000,
            seed=42,
            wan_backlog_cap=0.05,
        )
        runtime = deployment.groups[0]
        # plan(7,7): n_data=3, nc1=1 -> only the 3 fastest members gate.
        for node in runtime.members[:4]:
            deployment.network._wan_up[node.addr].acquire(0.0, 20e6)
        assert not runtime._senders_backlogged()
        for node in runtime.members[4:]:
            deployment.network._wan_up[node.addr].acquire(0.0, 20e6)
        assert runtime._senders_backlogged()

    def test_leader_gate_tracks_leader_only(self):
        deployment = GeoDeployment(
            tiny_cluster((4, 4, 4)),
            baseline(),
            make_workload("ycsb-a"),
            offered_load=2000,
            seed=43,
            wan_backlog_cap=0.05,
        )
        runtime = deployment.groups[0]
        for node in runtime.members[1:]:
            deployment.network._wan_up[node.addr].acquire(0.0, 20e6)
        assert not runtime._senders_backlogged()  # followers don't send
        deployment.network._wan_up[runtime.rep.addr].acquire(0.0, 20e6)
        assert runtime._senders_backlogged()

    def test_steward_token_serializes_slots(self):
        from repro.core.entry import EntryId
        from repro.protocols.runtime import SerialSlotPhase

        deployment = GeoDeployment(
            tiny_cluster((4, 4, 4)),
            steward(),
            make_workload("ycsb-a"),
            offered_load=2000,
            seed=44,
        )
        phase = deployment.groups[0].global_phase
        assert isinstance(phase, SerialSlotPhase)
        token = phase.token
        # The token is deployment-wide: every group shares it.
        assert all(
            g.global_phase.token is token for g in deployment.groups.values()
        )
        assert token.owner() == 0
        slot = token.take(EntryId(0, 1))
        assert token.in_flight
        # Group 0's runtime may not start another slot while in flight.
        assert not deployment.groups[0]._window_allows()
        token.commit(slot)
        assert not token.in_flight

    def test_async_pipeline_window(self):
        deployment = GeoDeployment(
            tiny_cluster((4, 4, 4)),
            massbft(),
            make_workload("ycsb-a"),
            offered_load=2000,
            seed=45,
            pipeline_window=2,
        )
        runtime = deployment.groups[0]
        runtime.next_seq = 4
        runtime.last_own_committed = 3
        assert runtime._window_allows()  # 1 outstanding < window of 2
        runtime.next_seq = 5
        assert not runtime._window_allows()  # window full
