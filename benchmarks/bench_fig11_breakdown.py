"""Figure 11: MassBFT latency breakdown (nationwide, YCSB-A).

The paper's breakdown: global replication dominates (cross-datacenter
latency); local consensus is significant (transaction signature
verification); entry encoding + rebuild cost ~2.3 ms and are negligible.
"""


from benchmarks._helpers import record_results, run_once, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.bench.report import format_table
from repro.costs import CostModel
from repro.topology import nationwide_cluster


def test_fig11_latency_breakdown(benchmark):
    def experiment():
        runner = ExperimentRunner()
        result = runner.run_calibrated(
            saturated_config("massbft", nationwide_cluster(7))
        )
        costs = CostModel()
        batch_bytes = result.mean_batch_size * 201
        coding_ms = (
            costs.encode_seconds(int(batch_bytes))
            + costs.rebuild_seconds(int(batch_bytes))
        ) * 1000
        return result, coding_ms

    result, coding_ms = run_once(benchmark, experiment)
    phases = result.phase_durations
    rows = [[k, round(v * 1000, 2)] for k, v in sorted(phases.items())]
    rows.append(["encode+rebuild (model)", round(coding_ms, 2)])
    print()
    print(
        format_table(
            ["phase", "mean_ms"],
            rows,
            title="Fig 11 MassBFT latency breakdown (YCSB-A nationwide)",
        )
    )
    print(f"  end-to-end mean latency: {result.mean_latency_ms:.1f} ms")
    print("paper: replication dominates; encoding+rebuild ~2.3 ms (negligible)")
    record_results(
        "fig11",
        {
            "phases_ms": {k: v * 1000 for k, v in phases.items()},
            "coding_ms": coding_ms,
            "total_ms": result.mean_latency_ms,
        },
    )

    # Shape assertions.
    assert phases["global_replication"] == max(
        v for k, v in phases.items() if k != "ordering_execution"
    ) or phases["global_replication"] > 0.25 * result.mean_latency_s
    # Coding cost is negligible relative to end-to-end latency (<10%).
    assert coding_ms < 0.1 * result.mean_latency_ms
    # Coding cost lands in the paper's few-millisecond regime.
    assert 0.1 < coding_ms < 10.0
