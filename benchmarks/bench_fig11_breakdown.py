"""Figure 11: MassBFT latency breakdown (nationwide, YCSB-A).

The paper's breakdown: global replication dominates (cross-datacenter
latency); local consensus is significant (transaction signature
verification); entry encoding + rebuild cost ~2.3 ms and are negligible.

The breakdown printed here is *trace-derived*: a ``repro.obs`` tracer
rides along on the latency run and the phase means come from
critical-path attribution over its span trees. The stamp-based
``phase_durations()`` numbers are computed from the same run and the
test asserts both agree within 5% per phase — the regression guard that
keeps the two accounting paths honest against each other.
"""


from benchmarks._helpers import WARMUP, record_results, run_once, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.bench.report import format_table
from repro.costs import CostModel
from repro.obs import analyze, breakdowns_agree, compare_breakdowns
from repro.topology import nationwide_cluster


def test_fig11_latency_breakdown(benchmark):
    def experiment():
        tracers = []

        def attach(deployment):
            # No telemetry sampler: only span collection rides along.
            tracers.append(deployment.attach_tracer(telemetry_interval=0.0))

        runner = ExperimentRunner()
        config = saturated_config(
            "massbft", nationwide_cluster(7), setup=attach
        )
        result = runner.run_calibrated(config)
        # run_calibrated's latency numbers come from the second (relaxed)
        # run, so the matching tracer is the last one attached.
        trace = tracers[-1].build()
        report = analyze(trace, warmup=WARMUP)
        costs = CostModel()
        batch_bytes = result.mean_batch_size * 201
        coding_ms = (
            costs.encode_seconds(int(batch_bytes))
            + costs.rebuild_seconds(int(batch_bytes))
        ) * 1000
        return result, coding_ms, report

    result, coding_ms, report = run_once(benchmark, experiment)
    phases = report.breakdown  # trace-derived critical-path attribution
    rows = [[k, round(v * 1000, 2)] for k, v in sorted(phases.items())]
    rows.append(["encode+rebuild (model)", round(coding_ms, 2)])
    print()
    print(
        format_table(
            ["phase", "mean_ms"],
            rows,
            title="Fig 11 MassBFT latency breakdown "
            "(YCSB-A nationwide, trace-derived)",
        )
    )
    print(f"  end-to-end mean latency: {result.mean_latency_ms:.1f} ms")
    print(
        f"  critical on {report.entries_measured} entries: "
        + ", ".join(
            f"{phase}={count}"
            for phase, count in sorted(report.critical_counts.items())
        )
    )
    print("paper: replication dominates; encoding+rebuild ~2.3 ms (negligible)")
    record_results(
        "fig11",
        {
            "phases_ms": {k: v * 1000 for k, v in phases.items()},
            "coding_ms": coding_ms,
            "total_ms": result.mean_latency_ms,
        },
    )

    # Trace-derived attribution must agree with stamp-based accounting
    # (same events, same filters) within 5% per phase.
    comparison = compare_breakdowns(
        report.breakdown, result.phase_durations, rel_tolerance=0.05
    )
    assert breakdowns_agree(comparison), comparison

    # Shape assertions.
    assert phases["global_replication"] == max(
        v for k, v in phases.items() if k != "ordering_execution"
    ) or phases["global_replication"] > 0.25 * result.mean_latency_s
    # Coding cost is negligible relative to end-to-end latency (<10%).
    assert coding_ms < 0.1 * result.mean_latency_ms
    # Coding cost lands in the paper's few-millisecond regime.
    assert 0.1 < coding_ms < 10.0
