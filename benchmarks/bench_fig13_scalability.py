"""Figure 13: scalability in nodes per group (a) and group count (b).

(a) Scaling nodes/group from 4 to 40: Baseline *decreases* (the leader
ships f+1 copies and f grows), MassBFT *increases* (aggregate bandwidth
grows) until transaction signature verification saturates the CPUs
(paper: plateau beyond ~16 nodes/group).

(b) Scaling groups 3 -> 7 at 7 nodes/group: both protocols lose
throughput to the growing global-Raft overhead; the paper reports
MassBFT -26.0% vs Baseline -37.6%.
"""


from benchmarks._helpers import record_results, run_once, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.bench.report import format_series
from repro.topology import nationwide_cluster, scaled_cluster

NODE_COUNTS = (4, 7, 10, 16, 24, 32, 40)
GROUP_COUNTS = (3, 4, 5, 6, 7)

#: Saturating offered load per group, per protocol. Baseline's capacity
#: is ~0.4-3 ktps/group across these sweeps; offering 30 ktps would grow
#: its batches to the cap and leave only 1-2 execution rounds in the
#: measurement window (pure quantization noise). MassBFT gets a high
#: offered load so its plateau emerges from the CPU (signature
#: verification), not from the offered rate.
OFFERED = {"massbft": 40_000.0, "baseline": 4_000.0}


def test_fig13a_scaling_nodes_per_group(benchmark):
    def experiment():
        runner = ExperimentRunner()
        out = {"massbft": [], "baseline": []}
        for n in NODE_COUNTS:
            cluster = nationwide_cluster(nodes_per_group=n)
            for protocol in out:
                config = saturated_config(protocol, cluster)
                config.offered_load = OFFERED[protocol]
                result = runner.run(config)
                out[protocol].append((n, result.throughput_ktps))
        return out

    out = run_once(benchmark, experiment)
    print()
    for protocol, series in out.items():
        print(
            format_series(
                f"Fig 13a {protocol}",
                [n for n, _ in series],
                [t for _, t in series],
                "nodes/group",
                "ktps",
            )
        )
    print("paper: Baseline decreases with n; MassBFT increases, then "
          "plateaus (~16 nodes) on signature verification")
    record_results("fig13a", out)

    mass = dict(out["massbft"])
    base = dict(out["baseline"])
    # Baseline: monotone-ish decline from 4 to 40.
    assert base[40] < 0.6 * base[4]
    # MassBFT: grows substantially from 4 to 16...
    assert mass[16] > 1.5 * mass[4]
    # ...then flattens (CPU-bound): 24 -> 40 gains at most 15%.
    assert mass[40] < 1.15 * mass[24]
    # And MassBFT dominates Baseline at every size.
    for n in NODE_COUNTS:
        assert mass[n] > base[n]


def test_fig13b_scaling_group_count(benchmark):
    def experiment():
        runner = ExperimentRunner()
        out = {"massbft": [], "baseline": []}
        for g in GROUP_COUNTS:
            cluster = scaled_cluster(n_groups=g, nodes_per_group=7)
            for protocol in out:
                config = saturated_config(protocol, cluster)
                config.offered_load = (
                    30_000.0 if protocol == "massbft" else OFFERED["baseline"]
                )
                result = runner.run(config)
                out[protocol].append((g, result.throughput_ktps))
        return out

    out = run_once(benchmark, experiment)
    print()
    for protocol, series in out.items():
        drop = 100 * (1 - series[-1][1] / series[0][1])
        print(
            format_series(
                f"Fig 13b {protocol} (drop {drop:.1f}%)",
                [g for g, _ in series],
                [t for _, t in series],
                "groups",
                "ktps",
            )
        )
    print("paper: 3 -> 7 groups: MassBFT -26.0%, Baseline -37.6%")
    record_results("fig13b", out)

    mass = dict(out["massbft"])
    base = dict(out["baseline"])
    mass_drop = 1 - mass[7] / mass[3]
    base_drop = 1 - base[7] / base[3]
    # Both lose throughput with more groups (paper: -26.0% / -37.6%).
    # Our bandwidth model yields near-identical relative drops (~n_g /
    # (n_g - 1) for both strategies); the paper's larger Baseline drop
    # includes braft-implementation overheads the simulation does not
    # carry — recorded as a deviation in EXPERIMENTS.md.
    assert 0.1 < mass_drop < 0.6
    assert 0.1 < base_drop < 0.6
    # MassBFT keeps a large absolute advantage at every group count.
    for g in GROUP_COUNTS:
        assert mass[g] > 5 * base[g]
