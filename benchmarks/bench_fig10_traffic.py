"""Figure 10: WAN traffic to replicate one entry, MassBFT vs Baseline.

The paper fixes the batch *size* (not the timeout) and measures total WAN
bytes to replicate an entry to the remote groups. MassBFT transmits
~n_total/n_data entry copies (2.33x for 7-node groups) spread over all
nodes, versus f+1 copies per destination group (6x total) for Baseline;
Merkle proofs and certificates add only a small constant.
"""


from benchmarks._helpers import record_results, run_once
from repro.bench.report import format_table
from repro.core.entry import LogEntry
from repro.core.replication import (
    EncodedBijectiveTransport,
    LeaderUnicastTransport,
)
from repro.sim.core import Simulator
from repro.sim.network import Network, NodeAddress
from repro.sim.node import SimNode

ENTRY_SIZES = (50_000, 100_000, 200_000, 400_000)


def replicate_once(transport_cls, entry_size, coding=None):
    sim = Simulator()
    rtts = {(i, j): 0.030 for i in range(3) for j in range(i + 1, 3)}
    net = Network(sim, rtt_matrix=rtts)
    members = {
        gid: [SimNode(sim, net, NodeAddress(gid, i)) for i in range(7)]
        for gid in range(3)
    }
    entries = {}
    kwargs = {"coding": coding} if coding else {}
    transport = transport_cls(
        members,
        deliver=lambda node, eid: None,
        get_entry=lambda eid: entries[eid],
        **kwargs,
    )
    entry = LogEntry(gid=0, seq=1, payload=b"", declared_size=entry_size)
    entries[entry.entry_id] = entry
    transport.replicate(entry, members[0], members[0][0])
    sim.run(until=10.0)
    return net.wan_bytes_total


def test_fig10_replication_traffic(benchmark):
    def experiment():
        rows = []
        for size in ENTRY_SIZES:
            mass = replicate_once(
                EncodedBijectiveTransport, size, coding="simulated"
            )
            base = replicate_once(LeaderUnicastTransport, size)
            rows.append(
                [
                    size // 1000,
                    round(mass / 1e6, 3),
                    round(base / 1e6, 3),
                    round(base / mass, 2),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["entry_KB", "massbft_MB", "baseline_MB", "savings_x"],
            rows,
            title="Fig 10 WAN traffic per replicated entry (3x7 nodes)",
        )
    )
    print("paper: MassBFT consumes less WAN traffic; extras negligible")
    record_results("fig10", rows)

    for size_kb, mass_mb, base_mb, ratio in rows:
        # Baseline ships 6 copies; MassBFT ~2*2.33: expect ~1.2-1.35x gap.
        assert mass_mb < base_mb
        # Proofs/certs stay a small fraction of the coded payload.
        coded_payload = 2 * (7 / 3) * size_kb / 1000
        assert mass_mb < 1.25 * coded_payload


def test_fig10_overhead_scales_with_entry_size(benchmark):
    """Traffic grows linearly in entry size; the fixed metadata cost
    (proofs, certificates) is amortised away for large entries."""

    def experiment():
        small = replicate_once(EncodedBijectiveTransport, 50_000, "simulated")
        large = replicate_once(EncodedBijectiveTransport, 400_000, "simulated")
        return small, large

    small, large = run_once(benchmark, experiment)
    print(f"\n  50 KB entry -> {small/1e6:.3f} MB; 400 KB entry -> {large/1e6:.3f} MB")
    ratio = large / small
    assert 7.0 < ratio < 8.2  # ~8x payload, sublinear metadata
