"""Figure 8: overall performance on the nationwide cluster.

Four workloads (YCSB-A, YCSB-B, SmallBank, TPC-C), five systems
(MassBFT, Baseline, GeoBFT, ISS, Steward), 3 groups x 7 nodes, RTTs
26.7-43.4 ms, 20 Mbps WAN per node. The paper reports MassBFT throughput
5.49-29.96x the baselines; latency ordering GeoBFT < Baseline < MassBFT
~ Steward < ISS; and MassBFT's 5.64x (not ~9x) TPC-C gain due to
signature verification plus hotspot aborts.

Paper reference points (nationwide, YCSB-A): MassBFT ~57.2 ktps /
128 ms; Baseline ~6.36 ktps / 119 ms; GeoBFT lowest latency ~68 ms;
Steward lowest throughput ~1.9 ktps.
"""

import pytest

from benchmarks._helpers import record_results, run_once, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.bench.report import format_table
from repro.topology import nationwide_cluster

PROTOCOLS = ("massbft", "baseline", "geobft", "iss", "steward")
WORKLOADS = ("ycsb-a", "ycsb-b", "smallbank", "tpcc")


def run_workload(workload: str):
    runner = ExperimentRunner()
    cluster = nationwide_cluster(nodes_per_group=7)
    rows = []
    for protocol in PROTOCOLS:
        kwargs = {}
        if workload == "tpcc":
            kwargs["workload_kwargs"] = {"n_warehouses": 128}
        result = runner.run_calibrated(
            saturated_config(protocol, cluster, workload=workload, **kwargs)
        )
        rows.append(
            [
                protocol,
                round(result.throughput_ktps, 2),
                round(result.mean_latency_ms, 1),
                round(result.abort_rate, 3),
                round(result.mean_batch_size, 0),
            ]
        )
    return rows


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig08_nationwide(benchmark, workload):
    rows = run_once(benchmark, lambda: run_workload(workload))
    print()
    print(
        format_table(
            ["protocol", "ktps", "latency_ms", "abort_rate", "batch"],
            rows,
            title=f"Fig 8 nationwide / {workload}",
        )
    )
    record_results(f"fig08_{workload}", rows)

    by_name = {r[0]: r for r in rows}
    massbft_tput = by_name["massbft"][1]
    # Shape: MassBFT wins throughput by a large factor on every workload.
    for other in ("baseline", "geobft", "iss", "steward"):
        assert massbft_tput > 3 * by_name[other][1], (workload, other)
    # Steward has the lowest throughput.
    assert by_name["steward"][1] == min(r[1] for r in rows)
    # GeoBFT has the lowest latency (0.5 RTT, no global consensus).
    assert by_name["geobft"][2] == min(r[2] for r in rows)
