"""Shared helpers for the per-figure benchmark files.

Every benchmark runs its experiment once (``benchmark.pedantic`` with a
single round — a simulated deployment is the unit of work, not a
microsecond-scale function) and prints the same rows/series the paper's
figure plots, alongside the paper's reported values where the paper gives
numbers. Absolute throughput is not expected to match the authors' C++
testbed; the *shape* (who wins, by what factor, where crossovers fall) is
the reproduction target — see EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List

from repro.bench.harness import RunConfig

#: Simulated seconds per measurement run (keep the full suite tractable).
DURATION = 1.6
WARMUP = 0.4
#: Saturating offered load per group for throughput probes (txns/s).
SATURATE = 30_000.0

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.json")


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    box: List[Any] = []

    def wrapper():
        box.append(fn())

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return box[0]


def record_results(figure: str, rows: Any) -> None:
    """Persist a figure's measured rows (consumed by EXPERIMENTS.md)."""
    data: Dict[str, Any] = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError:
                data = {}
    data[figure] = rows
    with open(RESULTS_PATH, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)


def saturated_config(protocol: str, cluster, workload: str = "ycsb-a", **kw) -> RunConfig:
    return RunConfig(
        protocol=protocol,
        cluster=cluster,
        workload=workload,
        offered_load=SATURATE,
        duration=DURATION,
        warmup=WARMUP,
        seed=1,
        **kw,
    )
