"""Figure 1b: GeoBFT throughput collapses as groups grow.

The paper deploys GeoBFT on 12-57 nodes (3 groups of 4-19, 20 Mbps WAN
per node) and observes throughput *decreasing* with group size: the group
leader must ship f+1 entry copies per destination group, and f grows with
n while the leader's upstream bandwidth does not.
"""


from benchmarks._helpers import record_results, run_once, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.bench.report import format_series
from repro.topology import nationwide_cluster

GROUP_SIZES = (4, 7, 10, 13, 16, 19)


def test_fig01b_geobft_group_size_collapse(benchmark):
    def experiment():
        runner = ExperimentRunner()
        series = []
        for n in GROUP_SIZES:
            result = runner.run(
                saturated_config("geobft", nationwide_cluster(nodes_per_group=n))
            )
            series.append((3 * n, result.throughput_ktps))
        return series

    series = run_once(benchmark, experiment)
    print()
    print(
        format_series(
            "Fig 1b GeoBFT",
            [n for n, _ in series],
            [t for _, t in series],
            "total nodes",
            "ktps",
        )
    )
    print("paper: throughput decreases significantly as group size grows")
    record_results("fig01b", series)

    # Shape assertions: monotone-ish decline, large end-to-end drop.
    first, last = series[0][1], series[-1][1]
    assert last < 0.6 * first, (first, last)
    assert all(t > 0 for _, t in series)
