"""Figure 15: performance under failures (YCSB-A, nationwide).

The paper's timeline: at t=20 s two Byzantine nodes per group (colluding)
start flooding tampered chunks — throughput unchanged, ~3 ms latency
bump; at t=40 s an entire group crashes — ordering stalls until a
takeover leader assigns the crashed group's clock, after which the two
surviving groups continue at a lower plateau. We reproduce the same
timeline compressed (Byzantine at 2 s, crash at 4 s).
"""


from benchmarks._helpers import record_results, run_once
from repro.bench.report import format_table
from repro.protocols import GeoDeployment, massbft
from repro.topology import nationwide_cluster
from repro.workloads import make_workload

BYZANTINE_AT = 2.0
CRASH_AT = 4.0
END = 7.0
WINDOW = 0.5


def test_fig15_fault_timeline(benchmark):
    def experiment():
        deployment = GeoDeployment(
            nationwide_cluster(7),
            massbft(),
            make_workload("ycsb-a"),
            offered_load=15_000,
            seed=2,
            takeover_timeout=0.8,
        )
        for gid, idx in ((0, [1, 2]), (1, [3, 4]), (2, [5, 6])):
            deployment.make_byzantine_at(gid=gid, count=2, at=BYZANTINE_AT, indices=idx)
        deployment.crash_group_at(0, at=CRASH_AT)
        metrics = deployment.run(duration=END, warmup=0.0)
        metrics.end_time = END
        tput = [
            (t, v / WINDOW / 1000)
            for t, v in metrics.throughput_timeline.window_sums(WINDOW, end=END)
        ]
        lat = [
            (t, v * 1000)
            for t, v in metrics.latency_timeline.window_means(WINDOW, end=END)
        ]
        failures = deployment.transport.monitor_counters.get("rebuild_failures", 0)
        return tput, lat, failures

    tput, lat, failures = run_once(benchmark, experiment)
    rows = [
        [f"{t:.1f}", round(kt, 2), round(dict(lat)[t], 1)] for t, kt in tput
    ]
    print()
    print(
        format_table(
            ["t_s", "ktps", "latency_ms"],
            rows,
            title="Fig 15 timeline (Byzantine @2s, group crash @4s)",
        )
    )
    print(f"  tampered-bucket rebuild failures detected: {failures}")
    record_results("fig15", {"throughput": tput, "latency": lat, "failures": failures})

    by_time = dict(tput)
    pre_byz = (by_time[1.0] + by_time[1.5]) / 2
    post_byz = (by_time[2.5] + by_time[3.0] + by_time[3.5]) / 3
    stall = by_time[4.0 + WINDOW]
    recovered = (by_time[6.0] + by_time[6.5]) / 2

    # Byzantine tampering leaves throughput unchanged (within 10%).
    assert post_byz > 0.9 * pre_byz
    assert failures > 0  # the attack really happened and was detected
    # The group crash stalls execution...
    assert stall < 0.3 * pre_byz
    # ...and the takeover restores roughly 2/3 of the original rate.
    assert 0.4 * pre_byz < recovered < 0.9 * pre_byz
