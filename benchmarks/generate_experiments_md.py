#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from benchmarks/results.json.

Run the benchmark suite first (``pytest benchmarks/ --benchmark-only``),
then ``python benchmarks/generate_experiments_md.py``.
"""

import json
import os

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS = os.path.join(HERE, "results.json")
OUT = os.path.join(HERE, "..", "EXPERIMENTS.md")


def main() -> None:
    with open(RESULTS) as fh:
        d = json.load(fh)

    def series(key, proto):
        return ", ".join(f"{int(x)}:{t:.1f}" for x, t in d[key][proto])

    fig8 = {}
    for wl in ("ycsb-a", "ycsb-b", "smallbank", "tpcc"):
        fig8[wl] = {r[0]: r for r in d[f"fig08_{wl}"]}

    lines = []
    A = lines.append
    A("# EXPERIMENTS — paper vs. measured")
    A("")
    A("Every figure and table of the paper's evaluation (Section VI), the bench")
    A("target that regenerates it, the paper's reported values where the text")
    A("gives numbers, and what this reproduction measures. Regenerate any row with")
    A("`pytest benchmarks/<file> --benchmark-only -s`; raw measured series are in")
    A("`benchmarks/results.json` (this file is generated from it by")
    A("`benchmarks/generate_experiments_md.py`). Absolute values come from a")
    A("calibrated simulator (see DESIGN.md §1); the reproduction targets are the")
    A("*shapes* — orderings, ratios, crossovers, plateaus. Checkmarks below mark")
    A("shape agreement; deviations are stated explicitly.")
    A("")
    A("## Fig 1b — motivation: GeoBFT vs group size")
    A("")
    A("Paper: deploying GeoBFT on 12–57 nodes (3 groups), throughput *decreases*")
    A("significantly as groups grow (the leader ships f+1 copies per group).")
    A("")
    A("Measured (total nodes → ktps): " + ", ".join(f"{int(n)}:{t:.1f}" for n, t in d["fig01b"]))
    A("")
    A("Shape ✓ — monotone decline, ~3x drop end to end (paper's figure shows the")
    A("same qualitative collapse).")
    A("")
    A("## Fig 8 — nationwide cluster (3×7 nodes, RTT 26.7–43.4 ms)")
    A("")
    A("| workload | system | paper | measured ktps | measured latency ms |")
    A("|---|---|---|---|---|")
    paper_vals = {
        ("ycsb-a", "massbft"): "57.2 ktps / 128 ms",
        ("ycsb-a", "baseline"): "6.36 ktps / 119 ms",
        ("ycsb-a", "geobft"): "lowest latency (68 ms)",
        ("ycsb-a", "iss"): "highest latency",
        ("ycsb-a", "steward"): "lowest throughput (~1.9 ktps)",
        ("tpcc", "massbft"): "5.64x Baseline (CPU + aborts)",
    }
    for wl in ("ycsb-a", "ycsb-b", "smallbank", "tpcc"):
        for proto in ("massbft", "baseline", "geobft", "iss", "steward"):
            r = fig8[wl][proto]
            pv = paper_vals.get((wl, proto), "—")
            A(f"| {wl} | {proto} | {pv} | {r[1]} | {r[2]} |")
    A("")
    ya = fig8["ycsb-a"]
    A(f"Shape ✓ — MassBFT wins every workload by {ya['massbft'][1]/ya['baseline'][1]:.1f}x")
    A(f"(YCSB-A, paper ~9x) up to {ya['massbft'][1]/ya['steward'][1]:.1f}x over Steward")
    A("(paper reports a 5.49–29.96x range); Steward lowest throughput ✓; GeoBFT")
    A("lowest latency ✓; ISS latency above Baseline's consensus path ✓.")
    A("Deviation: our measured TPC-C MassBFT/Baseline ratio is not depressed")
    A("relative to YCSB the way the paper's 5.64x is, because the Aria fallback")
    A("lane recovers aborted transactions without wasting execution budget")
    A("(DESIGN.md §7). The abort mechanism itself reproduces: TPC-C abort rate")
    A(f"{fig8['tpcc']['massbft'][3]:.1%} for MassBFT's large batches vs ~3% under YCSB-A.")
    A("")
    A("## Fig 9 — worldwide cluster (RTT 156–206 ms)")
    A("")
    A("| workload | system | measured ktps | measured latency ms |")
    A("|---|---|---|---|")
    for wl in ("ycsb-a", "smallbank"):
        for row in d[f"fig09_{wl}"]:
            A(f"| {wl} | {row[0]} | {row[1]} | {row[2]} |")
    A("")
    nat, wor = d["fig09_distance"]["nationwide"], d["fig09_distance"]["worldwide"]
    A(f"Shape ✓ — throughput ~unchanged vs nationwide (MassBFT {nat[0]:.1f} → {wor[0]:.1f} ktps;")
    A("paper: 'similar throughput, pipelining hides latency'); latency rises with")
    A(f"distance ({nat[1]:.0f} → {wor[1]:.0f} ms for MassBFT; paper attributes the rise to")
    A("Raft round trips) ✓.")
    A("")
    A("## Fig 10 — WAN traffic per replicated entry")
    A("")
    A("| entry KB | MassBFT MB | Baseline MB | savings |")
    A("|---|---|---|---|")
    for row in d["fig10"]:
        A(f"| {row[0]} | {row[1]} | {row[2]} | {row[3]}x |")
    A("")
    A("Shape ✓ — MassBFT moves fewer WAN bytes at every entry size; the measured")
    A("savings matches the arithmetic (6 full copies vs 2 × 7/3 coded copies =")
    A("1.29x) and the proof/certificate extras are the small residual the paper")
    A("calls negligible.")
    A("")
    A("## Fig 11 — MassBFT latency breakdown (YCSB-A nationwide)")
    A("")
    f11 = d["fig11"]
    A("| phase | mean ms |")
    A("|---|---|")
    for k, v in sorted(f11["phases_ms"].items()):
        A(f"| {k} | {v:.2f} |")
    A(f"| encode+rebuild (cost model) | {f11['coding_ms']:.2f} |")
    A(f"| **end-to-end mean** | **{f11['total_ms']:.1f}** |")
    A("")
    A("Shape ✓ — global replication dominates (paper: 'most of the overhead comes")
    A("from global replication'); local consensus significant (signature")
    A(f"verification); coding costs {f11['coding_ms']:.1f} ms vs the paper's measured ~2.3 ms")
    A("('negligible') ✓.")
    A("")
    A("## Fig 12 — heterogeneous group sizes (4, 7, 7)")
    A("")
    A("| system | total ktps | G1(4) | G2(7) | G3(7) | latency ms |")
    A("|---|---|---|---|---|---|")
    for row in d["fig12"]:
        A(f"| {row[0]} | {row[1]} | {row[2]} | {row[3]} | {row[4]} | {row[5]} |")
    A("")
    A("Shape ✓✓ — the paper's exact ablation ladder: Baseline < BR < EBR < EBR+A;")
    A("BR and EBR hold every group to the same rate (synchronous rounds, EBR")
    A("limited by the 4-node group); MassBFT (EBR+A) lets the 7-node groups run")
    A("~1.7x faster than the 4-node group ✓.")
    A("")
    A("## Fig 13a — scaling nodes per group (4 → 40)")
    A("")
    A("MassBFT (ktps): " + series("fig13a", "massbft"))
    A("")
    A("Baseline (ktps): " + series("fig13a", "baseline"))
    A("")
    A("Shape ✓ — Baseline declines monotonically; MassBFT rises with aggregate")
    A("bandwidth and plateaus beyond ~16–24 nodes where the CPU (transaction")
    A("signature verification) and the PBFT leader's LAN broadcast saturate —")
    A("the paper reports the plateau beyond 16 nodes.")
    A("")
    A("## Fig 13b — scaling group count (3 → 7)")
    A("")
    A("MassBFT (ktps): " + series("fig13b", "massbft"))
    A("")
    A("Baseline (ktps): " + series("fig13b", "baseline"))
    A("")
    mass = dict(d["fig13b"]["massbft"])
    base = dict(d["fig13b"]["baseline"])
    A(f"MassBFT drop 3→7 groups: {100*(1-mass[7]/mass[3]):.1f}% (paper −26.0%) ✓;")
    A(f"Baseline drop: {100*(1-base[7]/base[3]):.1f}% (paper −37.6%) — partial: both decline, but")
    A("our bandwidth model yields near-identical relative drops; the paper's")
    A("larger Baseline loss includes braft overheads the simulator does not")
    A("carry (DESIGN.md §7). MassBFT stays ~9x Baseline at every count ✓.")
    A("")
    A("## Fig 14 — nodes with different bandwidths (40 vs 20 Mbps)")
    A("")
    A("Measured (slow nodes/group → ktps): " + ", ".join(f"{int(n)}:{t:.1f}" for n, t in d["fig14"]))
    A("")
    A("Shape ✓ — throughput holds while ≤4 of 7 nodes are slow (the transfer plan")
    A("needs only n_data = 3 timely senders), then drops ~39% at 5 slow nodes —")
    A("the paper reports −36.9% beyond 4 slow nodes.")
    A("")
    A("## Fig 15 — performance under failures")
    A("")
    f15 = d["fig15"]
    A("| t (s) | ktps | latency ms | event |")
    A("|---|---|---|---|")
    lat = dict((round(t, 3), v) for t, v in f15["latency"])  # already in ms
    for t, kt in f15["throughput"]:
        ev = {2.0: "Byzantine tampering starts", 4.0: "group 0 crashes"}.get(t, "")
        A(f"| {t:.1f} | {kt:.1f} | {lat.get(round(t, 3), 0.0):.0f} | {ev} |")
    A("")
    A(f"Tampered buckets detected/blacklisted: {f15['failures']}.")
    A("")
    A("Shape ✓✓ — Byzantine chunk tampering leaves throughput unchanged ✓ (paper:")
    A("'throughput remains unchanged... ~3 ms increase in latency'); the group")
    A("crash stalls execution (vts[0] unassignable) ✓; after the takeover timeout")
    A("a new leader assigns the frozen clock and the survivors settle at ~2/3 of")
    A("the original rate ✓ (paper: 'throughput remains lower because the crashed")
    A("group cannot propose entries').")
    A("")
    A("## Table II — feature matrix")
    A("")
    A("Rendered from the executable protocol specs and cross-checked against them")
    A("in `bench_table_features.py` ✓ (see the table in that bench's output).")
    A("")
    A("## Ablation — overlapped VTS assignment (Fig 7a vs 7b)")
    A("")
    ab = d.get("ablation_overlap_vts")
    if ab:
        A(f"Overlapped: {ab['overlapped'][0]:.1f} ktps / {ab['overlapped'][1]:.1f} ms;"
          f" serial: {ab['serial'][0]:.1f} ktps / {ab['serial'][1]:.1f} ms.")
    A("Overlapping the assignment with the propose phase lowers latency at equal")
    A("throughput, the Section V-B claim (3 RTT → 2 RTT consensus path).")
    with open(OUT, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"wrote {OUT} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
