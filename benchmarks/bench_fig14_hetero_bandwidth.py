"""Figure 14: nodes with different bandwidths.

All 7 nodes per group start at 40 Mbps; we progressively demote nodes to
20 Mbps. Paper findings: throughput degrades gradually; beyond 4 slow
nodes per group it drops sharply (-36.9%) because 5+ slow nodes exceed
what the transfer plan can treat as crashed-equivalent, and latency
*decreases* (-13.4%) as replication replaces execution as the bottleneck.
"""


from benchmarks._helpers import record_results, run_once, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.bench.report import format_series
from repro.topology import nationwide_cluster
from repro.topology.presets import WAN_20MBPS, WAN_40MBPS

SLOW_COUNTS = (0, 2, 4, 5, 7)


def test_fig14_heterogeneous_bandwidth(benchmark):
    def experiment():
        runner = ExperimentRunner()
        series = []
        for n_slow in SLOW_COUNTS:
            cluster = nationwide_cluster(
                nodes_per_group=7, wan_bandwidth=WAN_40MBPS
            )
            for group in cluster.groups:
                for index in range(n_slow):
                    group.node_bandwidth[index] = WAN_20MBPS
            result = runner.run(saturated_config("massbft", cluster))
            series.append((n_slow, result.throughput_ktps))
        return series

    series = run_once(benchmark, experiment)
    print()
    print(
        format_series(
            "Fig 14 MassBFT",
            [n for n, _ in series],
            [t for _, t in series],
            "slow nodes/group",
            "ktps",
        )
    )
    print("paper: gradual decline; -36.9% beyond 4 slow nodes")
    record_results("fig14", series)

    by_count = dict(series)
    # Degradation is monotone in the number of slow nodes.
    values = [t for _, t in series]
    assert all(a >= b * 0.97 for a, b in zip(values, values[1:]))
    # All-slow lands near half of all-fast (bandwidth halved).
    assert 0.35 * by_count[0] < by_count[7] < 0.75 * by_count[0]
    # A substantial drop has occurred past 4 slow nodes.
    assert by_count[5] < 0.85 * by_count[0]
