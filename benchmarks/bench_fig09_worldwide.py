"""Figure 9: overall performance on the worldwide cluster.

Same matrix as Fig 8 but with Hong Kong / London / Silicon Valley RTTs
(156-206 ms). The paper's findings: throughput is similar to nationwide
(pipelining hides the longer consensus latency); latency rises for the
Raft-based systems (MassBFT, Steward); ISS suffers most from per-epoch
synchronisation (the paper lengthens its epoch from 0.1 s to 0.5 s to
compensate; ``repro.protocols.registry.iss(epoch_slots=...)`` exposes
the same knob).
"""

import pytest

from benchmarks._helpers import record_results, run_once, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.bench.report import format_table
from repro.protocols import iss
from repro.topology import nationwide_cluster, worldwide_cluster

PROTOCOLS = ("massbft", "baseline", "geobft", "iss", "steward")
WORKLOADS = ("ycsb-a", "smallbank")


def run_workload(workload: str):
    runner = ExperimentRunner()
    cluster = worldwide_cluster(nodes_per_group=7)
    rows = []
    for protocol in PROTOCOLS:
        result = runner.run_calibrated(
            saturated_config(protocol, cluster, workload=workload)
        )
        rows.append(
            [
                protocol,
                round(result.throughput_ktps, 2),
                round(result.mean_latency_ms, 1),
            ]
        )
    return rows


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig09_worldwide(benchmark, workload):
    rows = run_once(benchmark, lambda: run_workload(workload))
    print()
    print(
        format_table(
            ["protocol", "ktps", "latency_ms"],
            rows,
            title=f"Fig 9 worldwide / {workload}",
        )
    )
    record_results(f"fig09_{workload}", rows)

    by_name = {r[0]: r for r in rows}
    # Shape: MassBFT still wins throughput by a large factor worldwide.
    for other in ("baseline", "geobft", "iss", "steward"):
        assert by_name["massbft"][1] > 3 * by_name[other][1], (workload, other)


def test_fig09_latency_grows_with_distance(benchmark):
    """Worldwide latency exceeds nationwide latency for the Raft-based
    protocols (the paper attributes the increase to Raft round trips)."""

    def experiment():
        runner = ExperimentRunner()
        out = {}
        for name, cluster in (
            ("nationwide", nationwide_cluster(7)),
            ("worldwide", worldwide_cluster(7)),
        ):
            result = runner.run_calibrated(saturated_config("massbft", cluster))
            out[name] = (result.throughput_ktps, result.mean_latency_ms)
        return out

    out = run_once(benchmark, experiment)
    print()
    for name, (ktps, ms) in out.items():
        print(f"  massbft {name}: {ktps:.2f} ktps, {ms:.1f} ms")
    record_results("fig09_distance", out)
    assert out["worldwide"][1] > out["nationwide"][1]
    # Throughput stays in the same ballpark thanks to pipelining.
    assert out["worldwide"][0] > 0.5 * out["nationwide"][0]
