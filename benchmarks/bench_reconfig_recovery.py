"""Reconfiguration recovery: goodput dip depth and time-to-recovery.

Two churn scenarios against a steady-state deployment (the same ones
``repro bench`` runs): a telemetry-driven leader move off a throttled
representative, and a node join with state-transfer catch-up. For each
we report the steady goodput before the event, the worst post-event
goodput bin, and the time from the dip back to 90% of steady.

Graceful degradation is the assertion target: goodput never reaches
zero in any post-warmup bin, the dip stays bounded, and both scenarios
recover within the run.
"""

from benchmarks._helpers import record_results, run_once
from repro.bench.reconfig import run_all
from repro.bench.report import format_table


def test_reconfig_recovery(benchmark):
    results = run_once(benchmark, lambda: run_all(seed=2))

    print()
    print(
        format_table(
            ["scenario", "steady_tps", "dip_tps", "dip_ratio",
             "recovery_s", "recovered"],
            [r.row() for r in results],
            title="reconfiguration recovery (leader move, node join)",
        )
    )
    record_results(
        "reconfig_recovery", [r.to_jsonable() for r in results]
    )

    by_scenario = {r.scenario: r for r in results}
    move, join = by_scenario["leader-move"], by_scenario["node-join"]

    for result in results:
        # Commits continue at reduced capacity throughout: no bin after
        # warmup ever goes to zero, and both scenarios return to >= 90%
        # of the steady rate before the run ends.
        assert result.steady_tps > 0
        assert result.min_bin_tps > 0, f"{result.scenario} goodput hit zero"
        assert result.recovered, f"{result.scenario} did not recover"
        assert result.recovery_s < 2.0
        # The reconfiguration really happened, as bus events with epochs.
        kinds = [kind for _, kind, _ in result.events]
        assert result.events and result.events[0][0] >= result.event_at

    assert "leader_move" in [k for _, k, _ in move.events]
    assert [k for _, k, _ in join.events][:2] == ["join_started", "join"]
    # A leader move under a throttled NIC dips harder than a background
    # state transfer, but even it keeps a meaningful fraction of steady.
    assert move.dip_ratio > 0.2
    assert join.dip_ratio > 0.5
