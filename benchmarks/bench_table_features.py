"""Tables I/II: qualitative feature comparison of the implemented systems.

Not a performance benchmark — it renders the feature matrix (Table II)
from the implemented protocol specs and cross-checks that each spec's
configuration actually matches its row, so the table cannot drift from
the code.
"""


from benchmarks._helpers import record_results, run_once
from repro.bench.report import format_table
from repro.protocols import protocol_by_name
from repro.protocols.registry import feature_table


def test_table2_feature_matrix(benchmark):
    def experiment():
        table = feature_table()
        rows = []
        for system, features in table.items():
            rows.append(
                [
                    system,
                    features["multi_master"],
                    features["replication"],
                    features["consensus"],
                    features["ordering"],
                    features["coding"],
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["System", "Multi-master", "Replication", "Consensus", "Ordering", "Coding"],
            rows,
            title="Table II key features of competitor systems",
        )
    )
    record_results("table2", rows)

    # Cross-check the table against the executable specs.
    spec_of = {
        "Steward": protocol_by_name("steward"),
        "GeoBFT": protocol_by_name("geobft"),
        "Baseline": protocol_by_name("baseline"),
        "ISS": protocol_by_name("iss"),
        "MassBFT": protocol_by_name("massbft"),
    }
    table = feature_table()
    for system, spec in spec_of.items():
        row = table[system]
        assert (row["multi_master"] == "Y") == spec.multi_master
        assert (row["coding"] == "Erasure-coded") == (spec.transport == "encoded")
        assert (row["ordering"] == "Async.") == (spec.ordering == "async")
        if row["consensus"] == "Broadcast":
            assert spec.global_consensus == "none"
