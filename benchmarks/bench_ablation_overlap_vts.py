"""Ablation: overlapped vs serial vector-timestamp assignment (Fig 7).

Section V-B: assigning timestamps *after* an entry completes Raft
consensus (Fig 7a) costs a second consensus round (~3 RTT end to end);
overlapping assignment with the propose phase (Fig 7b) saves ~1 RTT
while Lemma V.1 keeps the two atomic. Both modes are implemented
(``massbft(overlap_vts=...)``); this bench measures the latency gap.
"""


from benchmarks._helpers import DURATION, WARMUP, record_results, run_once
from repro.protocols import GeoDeployment, massbft
from repro.topology import nationwide_cluster
from repro.workloads import make_workload


def measure(overlap: bool) -> tuple:
    deployment = GeoDeployment(
        nationwide_cluster(7),
        massbft(overlap_vts=overlap),
        make_workload("ycsb-a"),
        offered_load=12_000,  # comfortably below capacity: pure latency
        seed=3,
    )
    metrics = deployment.run(duration=DURATION, warmup=WARMUP)
    return metrics.throughput / 1000, metrics.mean_latency * 1000


def test_ablation_overlapped_vts_saves_latency(benchmark):
    def experiment():
        return {
            "overlapped": measure(True),
            "serial": measure(False),
        }

    out = run_once(benchmark, experiment)
    print()
    for mode, (ktps, ms) in out.items():
        print(f"  {mode:<11} {ktps:6.2f} ktps  {ms:6.1f} ms mean latency")
    print("paper: overlapping saves ~1 RTT (3 RTT -> 2 RTT consensus path)")
    record_results("ablation_overlap_vts", out)

    # Same throughput (it is a latency optimisation)...
    assert out["overlapped"][0] > 0.9 * out["serial"][0]
    # ...but overlapping is measurably faster end to end.
    assert out["overlapped"][1] < out["serial"][1]
