"""Figure 12: groups of different sizes (4, 7, 7) — the ablation ladder.

Baseline -> BR (bijective full-copy) -> EBR (encoded, synchronous
ordering) -> EBR+A (= MassBFT, asynchronous ordering). Paper findings:

* BR beats Baseline (no leader bottleneck) but all groups run at the
  same rate;
* EBR raises throughput but the synchronous rounds cap every group at
  the slowest (4-node) group's pace;
* MassBFT (EBR+A) lets the 7-node groups run at their own, higher rate
  while the 4-node group proceeds at its pace — highest total.
"""


from benchmarks._helpers import record_results, run_once, saturated_config
from repro.bench.harness import ExperimentRunner
from repro.bench.report import format_table
from repro.topology import nationwide_cluster

LADDER = ("baseline", "br", "ebr", "massbft")


def test_fig12_heterogeneous_group_sizes(benchmark):
    def experiment():
        runner = ExperimentRunner()
        cluster = nationwide_cluster(group_sizes=[4, 7, 7])
        rows = []
        for protocol in LADDER:
            result = runner.run_calibrated(saturated_config(protocol, cluster))
            rows.append(
                [
                    "EBR+A" if protocol == "massbft" else protocol.upper()
                    if protocol != "baseline"
                    else "Baseline",
                    round(result.throughput_ktps, 2),
                    round(result.group_throughput[0] / 1000, 2),
                    round(result.group_throughput[1] / 1000, 2),
                    round(result.group_throughput[2] / 1000, 2),
                    round(result.mean_latency_ms, 1),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["system", "total_ktps", "G1(4)_ktps", "G2(7)_ktps", "G3(7)_ktps", "lat_ms"],
            rows,
            title="Fig 12 heterogeneous group sizes (4, 7, 7)",
        )
    )
    record_results("fig12", rows)

    by_name = {r[0]: r for r in rows}
    # The ladder is strictly increasing in total throughput.
    assert (
        by_name["Baseline"][1]
        < by_name["BR"][1]
        < by_name["EBR"][1]
        < by_name["EBR+A"][1]
    )
    # Synchronous systems: all groups at (nearly) the same rate.
    for name in ("BR", "EBR"):
        g = by_name[name][2:5]
        assert max(g) < 1.25 * min(g), (name, g)
    # MassBFT decouples: the 7-node groups outrun the 4-node group.
    ebra = by_name["EBR+A"]
    assert ebra[3] > 1.3 * ebra[2]
    assert ebra[4] > 1.3 * ebra[2]
