#!/usr/bin/env python3
"""Geo-distributed banking: SmallBank across three continents.

The paper's motivating scenario: a database service spanning data
centers that must stay consistent despite Byzantine nodes and whole-
datacenter failures. This example runs the SmallBank transfer workload
on the *worldwide* cluster (Hong Kong / London / Silicon Valley,
156-206 ms RTTs) with full execution — real money moves through the
Aria engine against a real key-value store — and verifies conservation
of funds at the end.

Run:  python examples/geo_banking.py
"""

from repro import GeoDeployment, massbft, worldwide_cluster
from repro.workloads import SmallBankWorkload
from repro.workloads.smallbank import CHECKING, SAVINGS


def total_money(store) -> int:
    checking = sum(v for _, v in store.scan_prefix(f"{CHECKING}/"))
    savings = sum(v for _, v in store.scan_prefix(f"{SAVINGS}/"))
    return checking + savings


def main() -> None:
    print("=== Geo-distributed banking (SmallBank, worldwide cluster) ===\n")
    cluster = worldwide_cluster(nodes_per_group=7)
    print(f"Deploying on: {cluster.describe()}")

    # A small, fully-materialised bank so we can audit balances.
    workload = SmallBankWorkload(n_accounts=2_000, materialize_limit=2_000)
    deployment = GeoDeployment(
        cluster,
        massbft(),
        workload,
        offered_load=1_000,     # per-region client rate
        execution="full",       # run the real transfer logic
        coding="real",          # erasure-code real entry bytes
        seed=42,
    )

    observer = deployment.observer_of(0)
    before = total_money(observer.pipeline.store) or (
        2_000 * (10_000 + 5_000)
    )

    # Record each region's execution order so we can check agreement.
    executed = {}
    for gid in range(cluster.n_groups):
        node = deployment.observer_of(gid)
        sequence = []
        executed[gid] = sequence
        original = node.orderer.on_execute

        def wrapped(eid, sequence=sequence, original=original):
            sequence.append(eid)
            original(eid)

        node.orderer.on_execute = wrapped

    metrics = deployment.run(duration=3.0, warmup=0.5)

    store = observer.pipeline.store
    after = total_money(store)
    print(f"\nCommitted {metrics.committed} transactions "
          f"({metrics.throughput:.0f} tps, "
          f"{metrics.mean_latency * 1000:.0f} ms mean latency)")
    print(f"Abort rate (Aria conflicts): {metrics.abort_rate:.2%}")
    print(f"Initial funds: {before:,}")
    print(f"Final funds  : {after:,}")

    # Agreement check: regions may be at slightly different execution
    # heights when the run cuts off, but their execution orders must
    # agree on the common prefix (Theorem V.6) — identical orders over a
    # deterministic executor give identical states at equal heights.
    reference = max(executed.values(), key=len)
    for gid, sequence in executed.items():
        region = cluster.group(gid).region
        assert sequence == reference[: len(sequence)], f"{region} diverged!"
        print(
            f"  {region:<14} executed {len(sequence)} entries "
            "(prefix-consistent with the longest order)"
        )
    print("\nAll regions agree on the execution order. ✔")
    print("(deposits/withdrawals legitimately change total funds;")
    print(" transfers between accounts cannot — audited above)")


if __name__ == "__main__":
    main()
