#!/usr/bin/env python3
"""TPC-C order processing: deterministic execution and hotspot aborts.

Runs the paper's TPC-C subset (50% NewOrder / 50% Payment, 128
warehouses) through MassBFT with *full* execution: NewOrders really
allocate order ids and decrement stock, Payments really update the
warehouse/district YTD totals. Because Payment hammers per-warehouse
hotspot rows, Aria's deterministic concurrency control aborts and
retries conflicting transactions — the effect behind the paper's Fig 8d
observation that MassBFT's large batches raise the abort rate.

Run:  python examples/tpcc_orders.py
"""

from repro import GeoDeployment, baseline, massbft, nationwide_cluster
from repro.workloads import TpccWorkload


def run(spec, warehouses: int, load: float = 4_000):
    deployment = GeoDeployment(
        nationwide_cluster(nodes_per_group=7),
        spec,
        TpccWorkload(n_warehouses=warehouses),
        offered_load=load,
        execution="full",
        seed=9,
    )
    metrics = deployment.run(duration=2.5, warmup=0.5)
    return deployment, metrics


def main() -> None:
    print("=== TPC-C on MassBFT (full deterministic execution) ===\n")

    deployment, metrics = run(massbft(), warehouses=128)
    store = deployment.observer_of(0).pipeline.store

    orders = sum(1 for _ in store.scan_prefix("order/"))
    ytd = sum(
        row["w_ytd"] for _, row in store.scan_prefix("warehouse/")
    )
    print(f"committed     : {metrics.committed:,} txns "
          f"({metrics.throughput / 1000:.2f} ktps)")
    print(f"mean latency  : {metrics.mean_latency * 1000:.0f} ms")
    print(f"abort rate    : {metrics.abort_rate:.2%} "
          f"(batch ~{metrics.mean_batch_size:.0f} txns)")
    print(f"orders created: {orders:,}")
    print(f"total payments booked (sum of w_ytd): {ytd:,.2f}\n")

    # The Fig 8d effect: each system running near its own capacity
    # (Baseline ~2 ktps/group, MassBFT ~15 ktps/group with the paper's
    # fixed 20 ms batch timeout) produces very different batch sizes —
    # and MassBFT's big batches hit the Payment hotspots far more often.
    print("Abort-rate comparison near each system's capacity (Fig 8d):")
    for spec, label, load in (
        (baseline(), "Baseline", 2_000),
        (massbft(), "MassBFT", 15_000),
    ):
        _, m = run(spec, warehouses=16, load=load)  # fewer warehouses => hotter
        print(
            f"  {label:<9} batch ~{m.mean_batch_size:5.0f} txns"
            f"  abort rate {m.abort_rate:6.2%}"
            f"  throughput {m.throughput / 1000:6.2f} ktps"
        )


if __name__ == "__main__":
    main()
