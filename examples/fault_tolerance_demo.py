#!/usr/bin/env python3
"""Fault-tolerance demo: Byzantine chunk tampering and a datacenter loss.

Replays the paper's Fig 15 scenario on the nationwide cluster:

*  t = 2 s — two colluding Byzantine nodes per group start encoding a
   *tampered* entry into chunks (with a perfectly consistent Merkle tree)
   and flooding those chunks instead of the correct ones. Correct nodes
   bucket chunks by Merkle root, catch the fakes when a fake bucket's
   rebuild fails certificate validation, blacklist those chunk ids, and
   keep rebuilding from honest chunks: throughput is unaffected.

*  t = 4 s — the Zhangjiakou data center (group 0) goes dark. Entries
   keep replicating but cannot execute: every VTS needs group 0's clock
   element. After a timeout, the lowest live group wins a takeover
   election for group 0's Raft instance and assigns its frozen clock on
   its behalf; execution resumes at ~2/3 of the original rate (group 0's
   clients are gone).

Run:  python examples/fault_tolerance_demo.py
"""

from repro import GeoDeployment, massbft, nationwide_cluster, make_workload

BYZANTINE_AT = 2.0
CRASH_AT = 4.0
END = 7.0


def main() -> None:
    print("=== MassBFT under attack (the Fig 15 scenario) ===\n")
    cluster = nationwide_cluster(nodes_per_group=7)
    deployment = GeoDeployment(
        cluster,
        massbft(),
        make_workload("ycsb-a"),
        offered_load=15_000,
        seed=2,
        takeover_timeout=0.8,
    )

    # Byzantine nodes at disjoint plan positions per group (the worst
    # case the parity budget is sized for).
    for gid, indices in ((0, [1, 2]), (1, [3, 4]), (2, [5, 6])):
        deployment.make_byzantine_at(gid=gid, count=2, at=BYZANTINE_AT, indices=indices)
    deployment.crash_group_at(0, at=CRASH_AT)

    metrics = deployment.run(duration=END, warmup=0.0)
    metrics.end_time = END

    print(f"{'time':>6} {'throughput':>12} {'latency':>10}  event")
    events = {BYZANTINE_AT: "<- Byzantine tampering starts",
              CRASH_AT: "<- group 0 (Zhangjiakou) crashes"}
    latency = dict(metrics.latency_timeline.window_means(0.5, end=END))
    for t, committed in metrics.throughput_timeline.window_sums(0.5, end=END):
        marker = events.get(t, "")
        print(
            f"{t:5.1f}s {committed / 0.5 / 1000:9.2f} ktps "
            f"{latency.get(t, 0.0) * 1000:7.0f} ms  {marker}"
        )

    failures = deployment.transport.monitor_counters.get("rebuild_failures", 0)
    print(f"\nTampered buckets detected and blacklisted: {failures}")
    takeover = deployment.groups[1].instances[0].takeover_leader
    print(f"Group 0's Raft instance taken over by: group {takeover}")
    print(f"Total committed transactions: {metrics.committed:,}")


if __name__ == "__main__":
    main()
