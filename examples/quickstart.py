#!/usr/bin/env python3
"""Quickstart: run MassBFT on the paper's nationwide cluster.

Deploys 3 groups x 7 nodes (Zhangjiakou / Chengdu / Hangzhou, 20 Mbps WAN
per node), drives a YCSB-A workload from every region, and prints
throughput, latency, and the Algorithm 1 transfer plan the deployment
uses between its 7-node groups.

Run:  python examples/quickstart.py
"""

from repro import (
    GeoDeployment,
    generate_transfer_plan,
    make_workload,
    massbft,
    nationwide_cluster,
)


def main() -> None:
    print("=== MassBFT quickstart ===\n")

    # 1. The transfer plan: how an entry moves between two 7-node groups.
    plan = generate_transfer_plan(7, 7)
    print(
        f"Transfer plan 7 -> 7 nodes: {plan.n_total} chunks "
        f"({plan.n_data} data + {plan.n_parity} parity), "
        f"{plan.nc1} sent per sender, {plan.nc2} received per receiver"
    )
    print(
        f"WAN amplification: {plan.overhead:.2f} entry copies "
        f"(vs {(7 - 1) // 3 + 1 + (7 - 1) // 3} for full-copy bijective "
        f"sending, vs {(7 - 1) // 3 + 1} copies *per leader* for "
        "leader-based protocols)\n"
    )

    # 2. Deploy MassBFT on the simulated nationwide cluster.
    cluster = nationwide_cluster(nodes_per_group=7)
    print(f"Deploying on: {cluster.describe()}")
    deployment = GeoDeployment(
        cluster,
        massbft(),
        make_workload("ycsb-a"),
        offered_load=15_000,  # client txns/second per group
        seed=7,
    )

    # 3. Run 2 simulated seconds (0.5 s warmup) and report.
    metrics = deployment.run(duration=2.0, warmup=0.5)
    print(f"\nResults over {metrics.measured_duration():.1f} simulated seconds:")
    print(f"  throughput : {metrics.throughput / 1000:8.2f} ktps")
    print(f"  mean latency: {metrics.mean_latency * 1000:7.1f} ms")
    print(f"  p99 latency : {metrics.p99_latency * 1000:7.1f} ms")
    print(f"  mean batch  : {metrics.mean_batch_size:7.0f} txns/entry")
    for gid in range(cluster.n_groups):
        region = cluster.group(gid).region
        print(
            f"  {region:<12}: {metrics.group_throughput(gid) / 1000:6.2f} ktps"
        )
    print("\nLatency breakdown (mean seconds between entry phases):")
    for phase, seconds in sorted(metrics.phase_durations().items()):
        print(f"  {phase:<20} {seconds * 1000:7.2f} ms")

    wan_mb = deployment.network.wan_bytes_total / 1e6
    print(f"\nWAN traffic during measurement: {wan_mb:.1f} MB")


if __name__ == "__main__":
    main()
