#!/usr/bin/env python3
"""Scaling study: why leader-based replication stops scaling and
encoded bijective replication doesn't.

Sweeps nodes-per-group for MassBFT and Baseline (a compressed Fig 13a)
and prints, for each point, the throughput plus the *theoretical*
bandwidth bound each strategy implies — so you can see the model and the
simulation agree:

* Baseline: the leader ships (f+1) copies to each of 2 remote groups
  through one 20 Mbps uplink;
* MassBFT: the whole group ships lcm/n_data coded copies through n
  uplinks in parallel.

Run:  python examples/scaling_study.py
"""

from repro import (
    GeoDeployment,
    baseline,
    generate_transfer_plan,
    make_workload,
    massbft,
    nationwide_cluster,
)

TX_BYTES = 201          # YCSB-A average transaction size
WAN_BYTES_PER_S = 2.5e6  # 20 Mbps
SIZES = (4, 7, 10, 16)


def bandwidth_bound_ktps(protocol: str, n: int) -> float:
    """Back-of-envelope per-deployment throughput bound (3 groups)."""
    destinations = 2
    if protocol == "baseline":
        copies = ((n - 1) // 3 + 1) * destinations
        per_group = WAN_BYTES_PER_S / copies / TX_BYTES
    else:
        plan = generate_transfer_plan(n, n)
        per_group = (n * WAN_BYTES_PER_S) / (destinations * plan.overhead) / TX_BYTES
    return 3 * per_group / 1000


def measure(spec, n: int) -> float:
    deployment = GeoDeployment(
        nationwide_cluster(nodes_per_group=n),
        spec,
        make_workload("ycsb-a"),
        offered_load=30_000,
        seed=5,
    )
    metrics = deployment.run(duration=1.5, warmup=0.4)
    return metrics.throughput / 1000


def main() -> None:
    print("=== Scaling nodes per group (compressed Fig 13a) ===\n")
    print(f"{'n/group':>8} | {'Baseline ktps':>14} {'(bound)':>9} | "
          f"{'MassBFT ktps':>13} {'(bound)':>9}")
    print("-" * 62)
    for n in SIZES:
        base = measure(baseline(), n)
        mass = measure(massbft(), n)
        print(
            f"{n:>8} | {base:>14.2f} {bandwidth_bound_ktps('baseline', n):>8.1f} "
            f"| {mass:>13.2f} {bandwidth_bound_ktps('massbft', n):>8.1f}"
        )
    print(
        "\nBaseline decays as f grows (more copies through one uplink);\n"
        "MassBFT grows with group size (aggregate uplink bandwidth) until\n"
        "CPU-bound signature verification takes over (paper: ~16 nodes)."
    )


if __name__ == "__main__":
    main()
